"""Integrated co-training hooks (paper Sec. 4.3).

Co-training means the *training-time* forward pass performs neighbour
search exactly the way the deployed accelerator will: windowed over chunks
(compulsory splitting) and step-capped (deterministic termination).  The
searches only *select indices* — gradients flow through the local ops that
consume the gathered points, never through the selection itself, which is
why non-differentiability is harmless (paper Fig. 10).

:class:`GroupingContext` packages both behaviours behind two calls
(:meth:`ball_group`, :meth:`knn_group`) that the PointNet++ layers in
:mod:`repro.nn.pointnet2` consume.  Building a context per cloud mirrors
the per-sample preprocessing of the training loop.

Batched grouping
----------------
Both calls dispatch the whole query block through the batched
neighbour-search engine (:mod:`repro.spatial.kdtree` /
:class:`~repro.spatial.neighbors.ChunkedIndex`) and return one
``(Q, k)`` int64 array — not a Python list of per-query arrays.  The
padding semantics are unchanged from the per-query implementation:

* rows are filled with real hits first (closest first), then the first
  hit repeated up to width ``k`` (PointNet++ grouping semantics);
* a query with no hits falls back to its nearest cloud point — all empty
  rows are resolved in one vectorized nearest-point pass instead of an
  O(N) norm per empty query;
* rows keep the input query order (input-order stability), and capped
  (DT) searches run the traversal engine whose step accounting matches
  the per-query path exactly (step-count parity).

Both calls *emit work units* rather than executing searches inline: the
windowed path routes through :class:`~repro.spatial.neighbors.ChunkedIndex`'s
:class:`~repro.runtime.scheduler.WindowScheduler`, and the unsplit
(Base) path wraps its kd-tree in a
:class:`~repro.runtime.scheduler.SingleWindowState` behind its own
scheduler — so the ``executor`` knob of
:class:`~repro.core.config.StreamGridConfig` selects the runtime
backend (serial / thread / process) for every variant uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.config import StreamGridConfig
from repro.core.splitting import CompulsorySplitter
from repro.core.termination import TerminationPolicy
from repro.errors import ValidationError
from repro.runtime import (
    SingleWindowState,
    WindowScheduler,
    WorkUnit,
    run_tree_unit,
)
from repro.spatial.kdtree import (
    BatchQueryResult,
    KDTree,
    nearest_point_indices,
)


@dataclass
class GroupBuckets:
    """A group batch bucketed by real-hit count (no repeat-padding).

    Rows with the same number of real hits ``c`` are gathered into one
    dense ``(B_c, c)`` block, so downstream per-neighbour math runs on
    ``sum(B_c * c)`` elements instead of ``Q * size`` — on skewed
    workloads (a few dense rows, many sparse ones) that is most of the
    grouping flops.  :meth:`padded` reconstructs the classic
    repeat-padded ``(Q, size)`` array bit-equal to what
    :func:`pad_group_batch` always produced, so the bucketed form is a
    pure execution-layout change, never a semantic one.

    ``rows[i]`` holds the input query rows of bucket ``i`` and
    ``hits[i]`` their hit blocks; empty queries were already resolved
    to their nearest cloud point (they land in the ``c == 1`` bucket).
    """

    size: int
    n_queries: int
    rows: List[np.ndarray]
    hits: List[np.ndarray]

    @property
    def histogram(self) -> Dict[int, int]:
        """``{group size: rows}`` — the batch's skew profile."""
        return {int(block.shape[1]): len(idx)
                for idx, block in zip(self.rows, self.hits)}

    def padded(self) -> np.ndarray:
        """The repeat-padded ``(Q, size)`` array (PointNet++
        semantics), bit-equal to :func:`pad_group_batch`."""
        out = np.full((self.n_queries, self.size), -1, dtype=np.int64)
        for idx, block in zip(self.rows, self.hits):
            c = block.shape[1]
            out[idx[:, None], np.arange(c)[None, :]] = block
            if c < self.size:
                out[idx, c:] = block[:, :1]
        return out

    def sq_distances(self, queries: np.ndarray,
                     positions: np.ndarray) -> List[np.ndarray]:
        """Per-bucket squared query→hit distances, ``(B_c, c)`` each.

        One einsum per bucket over exactly the real hits — the
        flops-proportional-to-hits replacement for computing distances
        against a repeat-padded ``(Q, size)`` gather.
        """
        out: List[np.ndarray] = []
        for idx, block in zip(self.rows, self.hits):
            diff = positions[block] - queries[idx][:, None, :]
            out.append(np.einsum("bcd,bcd->bc", diff, diff))
        return out


def bucket_group_batch(indices: np.ndarray, counts: np.ndarray, size: int,
                       queries: np.ndarray,
                       positions: np.ndarray) -> GroupBuckets:
    """Bucket a ``(Q, C)`` result batch by real-hit count.

    The grouping front half shared by :func:`pad_group_batch` and the
    bucketed consumers: counts are clipped to *size*, empty rows (no
    hits — capped searches or empty windows) are all resolved in a
    single blocked nearest-point pass over *positions* so downstream
    consumers always have support, and rows are gathered into one dense
    block per distinct hit count.
    """
    indices = np.asarray(indices)
    n_queries = len(indices)
    counts = np.minimum(np.asarray(counts).astype(np.int64), size)
    first_col = np.full(n_queries, -1, dtype=np.int64)
    if indices.shape[1]:
        first_col[:] = indices[:, 0]
    empty = counts == 0
    if empty.any():
        first_col[empty] = nearest_point_indices(positions,
                                                 queries[empty])
        counts = np.where(empty, 1, counts)
    rows: List[np.ndarray] = []
    hits: List[np.ndarray] = []
    for c in np.unique(counts):
        c = int(c)
        idx = np.nonzero(counts == c)[0]
        block = np.empty((len(idx), c), dtype=np.int64)
        block[:, 0] = first_col[idx]
        if c > 1:
            block[:, 1:] = indices[idx, 1:c]
        rows.append(idx)
        hits.append(block)
    return GroupBuckets(size, n_queries, rows, hits)


def pad_group_batch(indices: np.ndarray, counts: np.ndarray, size: int,
                    queries: np.ndarray,
                    positions: np.ndarray) -> np.ndarray:
    """Repeat-padding of a ``(Q, C)`` batch to width *size*.

    The PointNet++ grouping semantics shared by
    :class:`GroupingContext` and the session-backed registration
    estimator (:mod:`repro.registration.odometry`): rows are filled
    with real hits first (closest first), then the first hit repeated
    up to *size*; empty rows (no hits — capped searches or empty
    windows) are all resolved in a single blocked nearest-point pass
    over *positions* so downstream consumers always have support.
    Implemented as :func:`bucket_group_batch` + :meth:`GroupBuckets.padded`
    — one shared front half, bit-equal output.
    """
    return bucket_group_batch(indices, counts, size, queries,
                              positions).padded()


class GroupingContext:
    """Per-cloud neighbour-search context honouring a StreamGrid config."""

    def __init__(self, positions: np.ndarray, config: StreamGridConfig,
                 calibration_k: int = 8,
                 rng: Optional[np.random.Generator] = None) -> None:
        positions = np.asarray(positions, dtype=np.float64)
        if positions.ndim != 2 or positions.shape[1] != 3:
            raise ValidationError("positions must be (N, 3)")
        if len(positions) == 0:
            raise ValidationError("cannot build a context on an empty cloud")
        self.positions = positions
        self.config = config
        self._splitter: Optional[CompulsorySplitter] = None
        self._tree: Optional[KDTree] = None
        self._scheduler: Optional[WindowScheduler] = None
        self._deadline: Optional[int] = None
        executor = config.executor
        workers = config.executor_workers
        if config.use_splitting:
            self._splitter = CompulsorySplitter(
                positions, config.splitting, executor=executor,
                executor_workers=workers)
        else:
            self._tree = KDTree(positions)
            self._scheduler = WindowScheduler(
                SingleWindowState(self._tree), executor, workers)
        if config.use_termination:
            policy = TerminationPolicy(config.termination)
            policy.calibrate(positions, calibration_k,
                             rng or np.random.default_rng(0))
            self._deadline = policy.deadline

    @property
    def deadline(self) -> Optional[int]:
        """Step deadline in force (None when DT is disabled)."""
        return self._deadline

    @property
    def effective_executor(self) -> str:
        """The runtime backend actually in force (``"serial"`` under
        fallback), whichever variant path this context took."""
        if self._splitter is not None:
            return self._splitter.effective_executor
        return self._scheduler.executor.effective

    def close(self) -> None:
        """Shut down any live executor workers (idempotent)."""
        if self._splitter is not None:
            self._splitter.close()
        if self._scheduler is not None:
            self._scheduler.close()

    def __enter__(self) -> "GroupingContext":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _single_tree_batch(self, kind: str, queries: np.ndarray,
                           params: dict) -> BatchQueryResult:
        """Run the whole batch as one window-0 work unit (Base path).

        A single window means at most one outcome, whose rows are
        already the full batch in input order.
        """
        window_ids = np.zeros(len(queries), dtype=np.int64)
        if not len(queries):
            # No units to schedule; the tree's batch calls already shape
            # zero-row results correctly, so run the kernel directly.
            return run_tree_unit(self._tree,
                                 WorkUnit(0, window_ids, kind, queries,
                                          params))
        outcomes = self._scheduler.run(queries, window_ids, kind, params)
        return outcomes[0][1]

    # ------------------------------------------------------------------
    def ball_group(self, queries: np.ndarray, radius: float,
                   max_results: int) -> np.ndarray:
        """Ball-query neighbour indices per query, padded by repetition.

        Returns a ``(Q, max_results)`` int64 array: real hits first, then
        the first hit repeated (PointNet++ grouping semantics).  A query
        with no hits falls back to its nearest point so downstream
        feature gathering always has support.
        """
        return self.ball_group_buckets(queries, radius,
                                       max_results).padded()

    def knn_group(self, queries: np.ndarray, k: int) -> np.ndarray:
        """kNN neighbour indices per query as a ``(Q, k)`` int64 array."""
        return self.knn_group_buckets(queries, k).padded()

    def ball_group_buckets(self, queries: np.ndarray, radius: float,
                           max_results: int) -> GroupBuckets:
        """Ball-query grouping as count buckets (no repeat-padding).

        The flops-proportional-to-hits form of :meth:`ball_group` —
        same searches, same empty-row fallback, but rows come back
        bucketed by real-hit count (:class:`GroupBuckets`), ready for
        per-bucket einsum math over exactly the real neighbours.
        ``.padded()`` recovers the :meth:`ball_group` array bit-equal.
        """
        if radius <= 0:
            raise ValidationError("radius must be positive")
        if max_results <= 0:
            raise ValidationError("max_results must be positive")
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        if self._splitter is not None:
            result = self._splitter.range_batch(
                queries, radius, max_steps=self._deadline,
                max_results=max_results)
        else:
            result = self._single_tree_batch(
                "range", queries,
                {"radius": radius, "max_steps": self._deadline,
                 "max_results": max_results})
        return self._bucket_batch(result.indices, result.counts,
                                  max_results, queries)

    def knn_group_buckets(self, queries: np.ndarray,
                          k: int) -> GroupBuckets:
        """kNN grouping as count buckets (see
        :meth:`ball_group_buckets`)."""
        if k <= 0:
            raise ValidationError("k must be positive")
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        if self._splitter is not None:
            result = self._splitter.knn_batch(queries, k,
                                              max_steps=self._deadline)
        else:
            result = self._single_tree_batch(
                "knn", queries, {"k": k, "max_steps": self._deadline})
        return self._bucket_batch(result.indices, result.counts, k,
                                  queries)

    def _bucket_batch(self, indices: np.ndarray, counts: np.ndarray,
                      size: int, queries: np.ndarray) -> GroupBuckets:
        """:func:`bucket_group_batch` against this context's cloud,
        recording the batch's skew histogram in the runtime's
        :class:`~repro.runtime.RuntimeStats`."""
        buckets = bucket_group_batch(indices, counts, size, queries,
                                     self.positions)
        self._runtime_stats.record_buckets(buckets.histogram)
        return buckets

    @property
    def _runtime_stats(self):
        if self._splitter is not None:
            return self._splitter.index.runtime_stats
        return self._scheduler.executor.runtime_stats


def baseline_config() -> StreamGridConfig:
    """The paper's **Base** variant: no splitting, no termination."""
    return StreamGridConfig(use_splitting=False, use_termination=False)


def cs_config(config: Optional[StreamGridConfig] = None) -> StreamGridConfig:
    """The **CS** variant of a config (splitting only)."""
    base = config or StreamGridConfig()
    return StreamGridConfig(splitting=base.splitting,
                            termination=base.termination,
                            use_splitting=True, use_termination=False,
                            executor=base.executor,
                            executor_workers=base.executor_workers)


def cs_dt_config(config: Optional[StreamGridConfig] = None
                 ) -> StreamGridConfig:
    """The **CS+DT** variant of a config (both techniques)."""
    base = config or StreamGridConfig()
    return StreamGridConfig(splitting=base.splitting,
                            termination=base.termination,
                            use_splitting=True, use_termination=True,
                            executor=base.executor,
                            executor_workers=base.executor_workers)
