"""Integrated co-training hooks (paper Sec. 4.3).

Co-training means the *training-time* forward pass performs neighbour
search exactly the way the deployed accelerator will: windowed over chunks
(compulsory splitting) and step-capped (deterministic termination).  The
searches only *select indices* — gradients flow through the local ops that
consume the gathered points, never through the selection itself, which is
why non-differentiability is harmless (paper Fig. 10).

:class:`GroupingContext` packages both behaviours behind two calls
(:meth:`ball_group`, :meth:`knn_group`) that the PointNet++ layers in
:mod:`repro.nn.pointnet2` consume.  Building a context per cloud mirrors
the per-sample preprocessing of the training loop.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.config import StreamGridConfig
from repro.core.splitting import CompulsorySplitter
from repro.core.termination import TerminationPolicy
from repro.errors import ValidationError
from repro.spatial.kdtree import KDTree


class GroupingContext:
    """Per-cloud neighbour-search context honouring a StreamGrid config."""

    def __init__(self, positions: np.ndarray, config: StreamGridConfig,
                 calibration_k: int = 8,
                 rng: Optional[np.random.Generator] = None) -> None:
        positions = np.asarray(positions, dtype=np.float64)
        if positions.ndim != 2 or positions.shape[1] != 3:
            raise ValidationError("positions must be (N, 3)")
        if len(positions) == 0:
            raise ValidationError("cannot build a context on an empty cloud")
        self.positions = positions
        self.config = config
        self._splitter: Optional[CompulsorySplitter] = None
        self._tree: Optional[KDTree] = None
        self._deadline: Optional[int] = None
        if config.use_splitting:
            self._splitter = CompulsorySplitter(positions, config.splitting)
        else:
            self._tree = KDTree(positions)
        if config.use_termination:
            policy = TerminationPolicy(config.termination)
            policy.calibrate(positions, calibration_k,
                             rng or np.random.default_rng(0))
            self._deadline = policy.deadline

    @property
    def deadline(self) -> Optional[int]:
        """Step deadline in force (None when DT is disabled)."""
        return self._deadline

    # ------------------------------------------------------------------
    def ball_group(self, queries: np.ndarray, radius: float,
                   max_results: int) -> List[np.ndarray]:
        """Ball-query neighbour indices per query, padded by repetition.

        Every query returns exactly ``max_results`` indices: real hits
        first, then the first hit repeated (PointNet++ grouping semantics).
        A query with no hits falls back to its nearest point so downstream
        feature gathering always has support.
        """
        if radius <= 0:
            raise ValidationError("radius must be positive")
        if max_results <= 0:
            raise ValidationError("max_results must be positive")
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        groups: List[np.ndarray] = []
        for query in queries:
            if self._splitter is not None:
                result = self._splitter.range(
                    query, radius, max_steps=self._deadline,
                    max_results=max_results)
            else:
                result = self._tree.range_search(
                    query, radius, max_steps=self._deadline,
                    max_results=max_results)
            groups.append(self._pad(result.indices, max_results, query))
        return groups

    def knn_group(self, queries: np.ndarray, k: int) -> List[np.ndarray]:
        """kNN neighbour indices per query, padded to exactly *k*."""
        if k <= 0:
            raise ValidationError("k must be positive")
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        groups: List[np.ndarray] = []
        for query in queries:
            if self._splitter is not None:
                result = self._splitter.knn(query, k,
                                            max_steps=self._deadline)
            else:
                result = self._tree.knn(query, k, max_steps=self._deadline)
            groups.append(self._pad(result.indices, k, query))
        return groups

    def _pad(self, indices: np.ndarray, size: int,
             query: np.ndarray) -> np.ndarray:
        if len(indices) == 0:
            nearest = int(np.argmin(
                np.linalg.norm(self.positions - query, axis=1)))
            indices = np.array([nearest], dtype=np.int64)
        if len(indices) >= size:
            return indices[:size]
        pad = np.full(size - len(indices), indices[0], dtype=np.int64)
        return np.concatenate([indices, pad])


def baseline_config() -> StreamGridConfig:
    """The paper's **Base** variant: no splitting, no termination."""
    return StreamGridConfig(use_splitting=False, use_termination=False)


def cs_config(config: Optional[StreamGridConfig] = None) -> StreamGridConfig:
    """The **CS** variant of a config (splitting only)."""
    base = config or StreamGridConfig()
    return StreamGridConfig(splitting=base.splitting,
                            termination=base.termination,
                            use_splitting=True, use_termination=False)


def cs_dt_config(config: Optional[StreamGridConfig] = None
                 ) -> StreamGridConfig:
    """The **CS+DT** variant of a config (both techniques)."""
    base = config or StreamGridConfig()
    return StreamGridConfig(splitting=base.splitting,
                            termination=base.termination,
                            use_splitting=True, use_termination=True)
