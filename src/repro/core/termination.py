"""Deterministic termination (paper Sec. 4.2).

Non-deterministic operations (kd-tree kNN / range search) get a fixed step
"deadline": traversal halts after the deadline and returns best-so-far
results.  Deadlines come from *offline profiling* — the paper measures the
full-traversal step distribution on sample queries and sets the deadline to
a fraction (1/4 in the evaluation) of the observed cost.

:class:`TerminationPolicy` implements that profiling and exposes the
deadline; :func:`profile_step_distribution` reproduces the Sec. 3 statistic
(mean 8.4e3, std 6.8e3 steps on KITTI at k=32 — our synthetic clouds are
smaller, so we match the *shape*: large mean with comparable std).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.config import TerminationConfig
from repro.errors import ValidationError
from repro.spatial.kdtree import KDTree


@dataclass(frozen=True)
class StepProfile:
    """Summary of a full-traversal step distribution."""

    mean: float
    std: float
    maximum: int
    minimum: int
    n_queries: int

    def describe(self) -> str:
        """Human-readable one-liner matching the paper's Sec. 3 phrasing."""
        return (f"steps: mean {self.mean:.1f}, std {self.std:.1f} over "
                f"{self.n_queries} queries (min {self.minimum}, "
                f"max {self.maximum})")


def profile_step_distribution(points: np.ndarray, queries: np.ndarray,
                              k: int) -> StepProfile:
    """Measure full kd-tree traversal steps for each query."""
    tree = KDTree(points)
    steps = tree.profile_steps(queries, k)
    return StepProfile(
        mean=float(steps.mean()),
        std=float(steps.std()),
        maximum=int(steps.max()),
        minimum=int(steps.min()),
        n_queries=len(steps),
    )


class TerminationPolicy:
    """Profiled step deadline for one (cloud, operation) pair.

    Parameters
    ----------
    config:
        Deadline fraction / absolute override / profiling budget.
    """

    def __init__(self, config: Optional[TerminationConfig] = None) -> None:
        self.config = config or TerminationConfig()
        self._profile: Optional[StepProfile] = None
        self._deadline: Optional[int] = None
        self._min_deadline: int = 1

    @property
    def profile(self) -> Optional[StepProfile]:
        """The offline profile, available after :meth:`calibrate`."""
        return self._profile

    @property
    def deadline(self) -> int:
        """The step deadline; requires a prior :meth:`calibrate` unless the
        config pins ``deadline_steps``."""
        if self.config.deadline_steps is not None:
            return self.config.deadline_steps
        if self._deadline is None:
            raise ValidationError(
                "TerminationPolicy must be calibrated before use "
                "(call calibrate())"
            )
        return self._deadline

    def calibrate(self, points: np.ndarray, k: int,
                  rng: Optional[np.random.Generator] = None) -> int:
        """Profile full traversals on sampled queries and fix the deadline.

        Queries are drawn from the cloud itself (the common self-query
        pattern of point-cloud pipelines).  The deadline is
        ``ceil(deadline_fraction * mean_full_steps)``, floored at the tree
        depth plus ``k`` — a capped search must at least complete one
        root-to-leaf descent or it returns points from the upper tree
        levels.  On the paper's KITTI-scale trees (depth ~17, mean steps
        8.4e3) the floor never binds; on small test clouds it does.
        """
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != 3:
            raise ValidationError("points must be (N, 3)")
        if len(points) == 0:
            raise ValidationError("cannot calibrate on an empty cloud")
        rng = rng or np.random.default_rng(0)
        tree = KDTree(points)
        n_queries = min(self.config.profile_queries, len(points))
        sample = rng.choice(len(points), size=n_queries, replace=False)
        steps = tree.profile_steps(points[sample], k)
        return self.calibrate_steps(steps, min_deadline=tree.depth() + k)

    def calibrate_steps(self, steps: np.ndarray,
                        min_deadline: int = 1) -> int:
        """Fix the deadline from an externally measured step profile.

        Frame-streaming callers (:mod:`repro.streaming`) profile
        traversal steps on the searches they actually run — the windowed
        trees of a live :class:`~repro.spatial.neighbors.ChunkedIndex` —
        instead of building a fresh full-cloud tree per frame; this
        entry point accepts those measured steps directly.
        ``min_deadline`` is the descent floor (tree depth plus ``k`` in
        :meth:`calibrate`).
        """
        steps = np.asarray(steps, dtype=np.float64)
        if steps.ndim != 1 or len(steps) == 0:
            raise ValidationError(
                "calibrate_steps needs a non-empty 1-D step array")
        if min_deadline <= 0:
            raise ValidationError("min_deadline must be positive")
        self._profile = StepProfile(
            mean=float(steps.mean()), std=float(steps.std()),
            maximum=int(steps.max()), minimum=int(steps.min()),
            n_queries=len(steps))
        self._min_deadline = int(min_deadline)
        deadline = int(np.ceil(
            self.config.deadline_fraction * self._profile.mean))
        self._deadline = max(self._min_deadline, deadline)
        return self._deadline

    def step_drift(self, steps: np.ndarray,
                   baseline: Optional[float] = None) -> float:
        """Relative mean shift of *steps* against a calibrated baseline.

        The streaming drift statistic: ``|mean(steps) - baseline| /
        baseline``, where *baseline* defaults to the stored profile's
        mean.  Sessions pass the mean they measured *on the same query
        sample at calibration time* so a static scene reads exactly
        zero drift (no sample-mismatch offset).  A session re-calibrates
        only when this exceeds its configured tolerance, so a stable
        stream reuses one deadline across frames.
        """
        if self._profile is None:
            raise ValidationError("calibrate() must run first")
        steps = np.asarray(steps, dtype=np.float64)
        if steps.ndim != 1 or len(steps) == 0:
            raise ValidationError(
                "step_drift needs a non-empty 1-D step array")
        if baseline is None:
            baseline = self._profile.mean
        if baseline <= 0:
            return float("inf") if steps.mean() > 0 else 0.0
        return float(abs(steps.mean() - baseline) / baseline)

    def state_snapshot(self) -> tuple:
        """The calibration state as an opaque immutable value.

        Streaming sessions snapshot the policy before mutating a frame
        and hand the value back to :meth:`restore_state` if the frame
        fails, so a failed re-calibration can never leave the deadline
        half-updated.  (:class:`StepProfile` is frozen and the other
        fields are scalars, so a shallow capture is a true snapshot.)
        """
        return (self._profile, self._deadline, self._min_deadline)

    def restore_state(self, snapshot: tuple) -> None:
        """Reinstate a :meth:`state_snapshot` value."""
        self._profile, self._deadline, self._min_deadline = snapshot

    def scaled_deadline(self, fraction: float) -> int:
        """Deadline at a different fraction of the same profile.

        Supports the Fig. 20 sensitivity sweep (1, 1/2, 1/4, ... of a full
        traversal) without re-profiling.  The descent floor from
        :meth:`calibrate` still applies.
        """
        if fraction <= 0:
            raise ValidationError("fraction must be positive")
        if self._profile is None:
            raise ValidationError("calibrate() must run first")
        return max(self._min_deadline,
                   int(np.ceil(fraction * self._profile.mean)))


def apply_deadline(tree: KDTree, queries: np.ndarray, k: int,
                   deadline: int) -> dict:
    """Run capped kNN over *queries*; summarise termination behaviour.

    Returns a dict with the fraction of queries cut short, the mean
    steps actually spent, the per-query ``steps`` / ``terminated`` /
    ``counts`` arrays straight from the batch engine, and the per-query
    neighbour lists — a convenience used by tests and examples to show
    latency becoming input-independent.

    The accounting consumes the ``(Q,)`` arrays the batch engine
    produces directly: the neighbour lists are carved out of the padded
    ``(Q, k)`` index block with one validity mask + split instead of a
    per-query trimming loop.
    """
    if deadline <= 0:
        raise ValidationError("deadline must be positive")
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    if len(queries) == 0:
        # Match the batch engine's empty-input behaviour: empty per-query
        # arrays and zeroed aggregates instead of nan/ValueError from
        # mean()/max() over a zero-length array.
        return {
            "neighbors": [],
            "counts": np.zeros(0, dtype=np.int64),
            "steps": np.zeros(0, dtype=np.int64),
            "terminated": np.zeros(0, dtype=bool),
            "mean_steps": 0.0,
            "max_steps": 0,
            "terminated_fraction": 0.0,
        }
    result = tree.knn_batch(queries, k, max_steps=deadline)
    counts = result.counts.astype(np.int64)
    steps = result.steps.astype(np.int64)
    terminated = result.terminated.astype(bool)
    width = result.indices.shape[1]
    valid = np.arange(width)[None, :] < counts[:, None]
    neighbors = np.split(result.indices[valid], np.cumsum(counts)[:-1])
    return {
        "neighbors": neighbors,
        "counts": counts,
        "steps": steps,
        "terminated": terminated,
        "mean_steps": float(steps.mean()),
        "max_steps": int(steps.max()),
        "terminated_fraction": float(terminated.mean()),
    }
