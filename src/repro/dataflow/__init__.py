"""Abstract dataflow interface (paper Sec. 6) and graph analyses."""

from repro.dataflow.analysis import (
    AsapSchedule,
    asap_schedule,
    classify_edges,
    communication_summary,
    simulate_edge_occupancy,
    unsplit_buffer_requirement,
)
from repro.dataflow.graph import DataflowGraph, Edge, InstantiatedGraph
from repro.dataflow.ops import (
    StageSpec,
    elementwise,
    global_op,
    reduction,
    sink,
    source,
    stencil,
)

__all__ = [
    "AsapSchedule",
    "asap_schedule",
    "classify_edges",
    "communication_summary",
    "simulate_edge_occupancy",
    "unsplit_buffer_requirement",
    "DataflowGraph",
    "Edge",
    "InstantiatedGraph",
    "StageSpec",
    "elementwise",
    "global_op",
    "reduction",
    "sink",
    "source",
    "stencil",
]
