"""Dataflow graphs of abstract stages, with line buffers on edges.

A :class:`DataflowGraph` is a DAG of :class:`~repro.dataflow.ops.StageSpec`
nodes.  Every edge carries a line buffer whose size the optimizer
(:mod:`repro.optimizer`) later determines.  The graph is *abstract* until
:meth:`DataflowGraph.instantiate` binds it to a workload size, which
propagates total element counts (the ``W_i`` of Eqn. 7) through the DAG.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dataflow.ops import StageSpec
from repro.errors import GraphError


@dataclass(frozen=True)
class Edge:
    """A producer -> consumer line-buffer edge."""

    producer: str
    consumer: str


class DataflowGraph:
    """A DAG of stages connected by line buffers."""

    def __init__(self) -> None:
        self._stages: Dict[str, StageSpec] = {}
        self._edges: List[Edge] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_stage(self, spec: StageSpec) -> "DataflowGraph":
        """Add a stage; names must be unique.  Returns self for chaining."""
        if spec.name in self._stages:
            raise GraphError(f"duplicate stage name {spec.name!r}")
        self._stages[spec.name] = spec
        return self

    def connect(self, producer: str, consumer: str) -> "DataflowGraph":
        """Add a line-buffer edge from *producer* to *consumer*."""
        for name in (producer, consumer):
            if name not in self._stages:
                raise GraphError(f"unknown stage {name!r}")
        if producer == consumer:
            raise GraphError("self-loops are not allowed")
        edge = Edge(producer, consumer)
        if edge in self._edges:
            raise GraphError(f"duplicate edge {producer!r} -> {consumer!r}")
        prod, cons = self._stages[producer], self._stages[consumer]
        if prod.element_width_out != cons.element_width_in:
            raise GraphError(
                f"element width mismatch on {producer!r} -> {consumer!r}: "
                f"{prod.element_width_out} vs {cons.element_width_in}"
            )
        self._edges.append(edge)
        return self

    @classmethod
    def chain(cls, stages: Sequence[StageSpec]) -> "DataflowGraph":
        """Build a linear pipeline from an ordered stage list."""
        graph = cls()
        for spec in stages:
            graph.add_stage(spec)
        for prev, cur in zip(stages[:-1], stages[1:]):
            graph.connect(prev.name, cur.name)
        return graph

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def stages(self) -> Dict[str, StageSpec]:
        return dict(self._stages)

    @property
    def edges(self) -> List[Edge]:
        return list(self._edges)

    def stage(self, name: str) -> StageSpec:
        try:
            return self._stages[name]
        except KeyError:
            raise GraphError(f"unknown stage {name!r}") from None

    def producers_of(self, name: str) -> List[str]:
        self.stage(name)
        return [e.producer for e in self._edges if e.consumer == name]

    def consumers_of(self, name: str) -> List[str]:
        self.stage(name)
        return [e.consumer for e in self._edges if e.producer == name]

    def sources(self) -> List[str]:
        return [n for n in self._stages if not self.producers_of(n)]

    def sinks(self) -> List[str]:
        return [n for n in self._stages if not self.consumers_of(n)]

    def topological_order(self) -> List[str]:
        """Stage names in dependency order; raises on cycles."""
        in_degree = {n: len(self.producers_of(n)) for n in self._stages}
        ready = sorted(n for n, d in in_degree.items() if d == 0)
        order: List[str] = []
        while ready:
            node = ready.pop(0)
            order.append(node)
            for consumer in sorted(self.consumers_of(node)):
                in_degree[consumer] -= 1
                if in_degree[consumer] == 0:
                    ready.append(consumer)
            ready.sort()
        if len(order) != len(self._stages):
            raise GraphError("dataflow graph contains a cycle")
        return order

    def validate(self) -> None:
        """Check DAG-ness and that every non-source/sink stage is wired."""
        order = self.topological_order()
        for name in order:
            spec = self._stages[name]
            has_in = bool(self.producers_of(name))
            has_out = bool(self.consumers_of(name))
            if spec.kind == "source" and has_in:
                raise GraphError(f"source {name!r} has incoming edges")
            if spec.kind == "sink" and has_out:
                raise GraphError(f"sink {name!r} has outgoing edges")
            if spec.kind not in ("source", "sink") and not (has_in and
                                                            has_out):
                raise GraphError(
                    f"stage {name!r} must have both producers and consumers"
                )

    # ------------------------------------------------------------------
    # Workload binding
    # ------------------------------------------------------------------
    def instantiate(self, n_input_elements: int) -> "InstantiatedGraph":
        """Bind the graph to a workload of *n_input_elements* per source.

        Element totals ``W`` propagate through each stage by its gain
        (τ_out / τ_in); fan-in stages consume their producers' combined
        output.
        """
        if n_input_elements <= 0:
            raise GraphError("n_input_elements must be positive")
        self.validate()
        order = self.topological_order()
        w_in: Dict[str, float] = {}
        w_out: Dict[str, float] = {}
        for name in order:
            spec = self._stages[name]
            producers = self.producers_of(name)
            if not producers:
                w_in[name] = float(n_input_elements)
            else:
                w_in[name] = sum(w_out[p] for p in producers)
            if spec.kind == "source":
                w_out[name] = float(n_input_elements)
            else:
                w_out[name] = w_in[name] * spec.gain
        return InstantiatedGraph(self, w_in, w_out)


@dataclass
class InstantiatedGraph:
    """A dataflow graph bound to concrete per-stage element totals."""

    graph: DataflowGraph
    w_in: Dict[str, float]
    w_out: Dict[str, float]

    def write_duration(self, name: str) -> float:
        """Cycles stage *name* spends writing its output (W / τ_out)."""
        return self.w_out[name] / self.graph.stage(name).tau_out

    def read_duration(self, name: str) -> float:
        """Cycles stage *name* spends reading fresh input (W_in / τ_in)."""
        spec = self.graph.stage(name)
        if spec.kind == "source":
            return 0.0
        return self.w_in[name] / spec.tau_in

    def busy_duration(self, name: str) -> float:
        """Total busy time of the stage (max of read and write phases)."""
        return max(self.read_duration(name), self.write_duration(name))

    def edge_rates(self, edge) -> Tuple[float, float]:
        """(τ_out of producer, τ_in of consumer) for one edge."""
        return (self.graph.stage(edge.producer).tau_out,
                self.graph.stage(edge.consumer).tau_in)
