"""Dependency and communication-pattern analysis of dataflow graphs.

This module extracts what the optimizer needs from a user's graph
(paper Fig. 1: "Comm. Patterns" and "Data Dependency" feed the ILP):

* ASAP (as-soon-as-possible) schedules — the performance target the
  buffer minimisation must preserve;
* edge classification — local edges obey Eqn. 6, global edges Eqn. 7;
* an occupancy simulator used to cross-check optimized buffer sizes
  against the "dense" (unpruned) constraint set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.dataflow.graph import DataflowGraph, Edge, InstantiatedGraph
from repro.errors import GraphError


def classify_edges(graph: DataflowGraph) -> Dict[Edge, str]:
    """Label each edge 'local' or 'global' by its *consumer*'s kind.

    The dependency constraint form is chosen by whether the consumer needs
    all producer output before starting (global) or can stream (local).
    """
    return {
        edge: ("global" if graph.stage(edge.consumer).is_global
               else "local")
        for edge in graph.edges
    }


@dataclass
class AsapSchedule:
    """Earliest-start schedule: per-stage write-phase start cycles."""

    write_start: Dict[str, float]
    inst: InstantiatedGraph

    def start(self, name: str) -> float:
        """Stage start cycle (t_s = t_w - pipeline depth)."""
        return self.write_start[name] - self.inst.graph.stage(name).stage

    def write_end(self, name: str) -> float:
        return self.write_start[name] + self.inst.write_duration(name)

    def busy_end(self, name: str) -> float:
        return self.write_start[name] + self.inst.busy_duration(name)

    @property
    def makespan(self) -> float:
        return max(self.busy_end(n) for n in self.write_start)


def asap_schedule(inst: InstantiatedGraph) -> AsapSchedule:
    """Compute the earliest feasible write-phase start of every stage.

    Edge constraints (with ``t_w`` the write/consume phase start, ``D`` the
    producer write duration, ``R`` the consumer read duration):

    * local edge: ``t_w_c >= t_w_p`` and ``t_w_c >= t_w_p + D_p - R_c``
      (the consumer may neither read ahead of production nor finish before
      the producer finishes) — the endpoint form of Eqn. 6;
    * global edge: ``t_w_c >= t_w_p + D_p`` (Eqn. 7).
    """
    graph = inst.graph
    kinds = classify_edges(graph)
    write_start: Dict[str, float] = {}
    for name in graph.topological_order():
        spec = graph.stage(name)
        earliest = float(spec.stage)  # t_s >= 0 means t_w >= depth
        for producer in graph.producers_of(name):
            edge = Edge(producer, name)
            d_p = inst.write_duration(producer)
            if kinds[edge] == "global":
                bound = write_start[producer] + d_p
            else:
                r_c = inst.read_duration(name)
                bound = max(write_start[producer],
                            write_start[producer] + d_p - r_c)
            earliest = max(earliest, bound)
        write_start[name] = earliest
    return AsapSchedule(write_start, inst)


def integer_asap_schedule(inst: InstantiatedGraph) -> AsapSchedule:
    """ASAP schedule with write starts rounded up to whole cycles.

    The rounded schedule satisfies every dependency constraint (rounding a
    start upward only relaxes them), so its makespan is an
    integer-feasible performance target for the ILP.
    """
    graph = inst.graph
    kinds = classify_edges(graph)
    write_start: Dict[str, float] = {}
    for name in graph.topological_order():
        spec = graph.stage(name)
        earliest = float(spec.stage)
        for producer in graph.producers_of(name):
            edge = Edge(producer, name)
            d_p = inst.write_duration(producer)
            if kinds[edge] == "global":
                bound = write_start[producer] + d_p
            else:
                r_c = inst.read_duration(name)
                bound = max(write_start[producer],
                            write_start[producer] + d_p - r_c)
            earliest = max(earliest, bound)
        write_start[name] = float(np.ceil(earliest - 1e-9))
    return AsapSchedule(write_start, inst)


def simulate_edge_occupancy(inst: InstantiatedGraph,
                            write_start: Dict[str, float],
                            overwrite_start: Dict[Edge, float],
                            n_samples: int = 512) -> Dict[Edge, float]:
    """Peak element occupancy of every edge buffer under a schedule.

    Evaluates the *dense* occupancy form — production ramp clamped at the
    total ``W_p`` minus the freed ramp — on a fine time grid plus all ramp
    breakpoints.  This is the unpruned Eqn. 2 evaluated everywhere, used
    to validate the pruned ILP (Eqn. 8) in tests.
    """
    if n_samples <= 1:
        raise GraphError("n_samples must exceed 1")
    graph = inst.graph
    peaks: Dict[Edge, float] = {}
    for edge in graph.edges:
        producer, consumer = edge.producer, edge.consumer
        tau_out = graph.stage(producer).tau_out
        tau_in = graph.stage(consumer).tau_in
        w_total = inst.w_out[producer]
        t_w = write_start[producer]
        t_e = t_w + inst.write_duration(producer)
        t_o = overwrite_start[edge]
        horizon = max(t_e, t_o + w_total / max(tau_in, 1e-12)) + 1.0
        times = np.linspace(0.0, horizon, n_samples)
        times = np.union1d(times, [t_w, t_e, t_o])
        produced = np.clip((times - t_w) * tau_out, 0.0, w_total)
        freed = np.clip((times - t_o) * tau_in, 0.0, w_total)
        occupancy = np.maximum(produced - freed, 0.0)
        peaks[edge] = float(occupancy.max())
    return peaks


def unsplit_buffer_requirement(inst: InstantiatedGraph) -> Dict[Edge, float]:
    """Per-edge buffer elements of the **Base** line-buffer design.

    Without compulsory splitting, a global consumer forces its input edge
    to hold the producer's *entire* output (the paper's Sec. 3 argument
    that global ops make line buffers unaffordable); local edges hold a
    stencil-window-sized sliver (reuse factor x read shape).
    """
    graph = inst.graph
    kinds = classify_edges(graph)
    sizes: Dict[Edge, float] = {}
    for edge in graph.edges:
        if kinds[edge] == "global":
            sizes[edge] = inst.w_out[edge.producer]
        else:
            spec = graph.stage(edge.consumer)
            sizes[edge] = float(spec.i_shape[0] * spec.reuse_factor)
    return sizes


def communication_summary(inst: InstantiatedGraph) -> Dict[str, dict]:
    """Per-stage communication pattern digest (rates, totals, durations)."""
    graph = inst.graph
    summary: Dict[str, dict] = {}
    for name in graph.topological_order():
        spec = graph.stage(name)
        summary[name] = {
            "kind": spec.kind,
            "tau_in": spec.tau_in,
            "tau_out": spec.tau_out,
            "w_in": inst.w_in[name],
            "w_out": inst.w_out[name],
            "read_duration": inst.read_duration(name),
            "write_duration": inst.write_duration(name),
            "pipeline_depth": spec.stage,
        }
    return summary
