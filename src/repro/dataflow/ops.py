"""Abstract stage descriptors — the paper's programming interface (Sec. 6).

Users describe a point-cloud pipeline as a dataflow graph of abstract
operations without specifying their computation.  Each operation carries
the Tbl. 1 parameters:

======== ============ =================================================
symbol   parameter    meaning
======== ============ =================================================
ρ_in     ``i_shape``  input shape ``[points, attrs]`` per read
f_in     ``i_freq``   cycles between input reads
β        ``reuse``    per-dimension input reuse factors
Δt_stage ``stage``    pipeline depth (cycles of internal latency)
ρ_out    ``o_shape``  output shape per write
f_out    ``o_freq``   cycles between output writes
======== ============ =================================================

The three constructors mirror Listing 1: :func:`stencil`,
:func:`reduction`, and :func:`global_op`; greyed-out parameters in the
paper's Fig. 12 are inferred here exactly as described (stencil and
reduction default ``i_freq`` / ``o_freq`` to 1, stencil reuse comes from
the kernel, reduction reuse is 1).

Throughputs derive as in Sec. 5.2:

* ``tau_out = prod(o_shape_points) / o_freq`` — elements written per cycle,
* ``tau_in = prod(i_shape_points) / (beta * i_freq)`` for stencils (each
  element re-read ``beta`` times costs no fresh input),
* ``tau_in = prod(i_shape_points) / i_freq`` for reductions/global ops.

An *element* is one point row (``i_shape[0]`` counts points; ``i_shape[1]``
counts attributes per point and must match across an edge).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.errors import ValidationError

#: Dependency kinds distinguishing Eqn. 6 (local) from Eqn. 7 (global).
LOCAL_KINDS = ("source", "elementwise", "stencil", "reduction", "sink")
GLOBAL_KINDS = ("global",)
ALL_KINDS = LOCAL_KINDS + GLOBAL_KINDS


@dataclass(frozen=True)
class StageSpec:
    """One abstract pipeline stage (a node of the dataflow graph)."""

    name: str
    kind: str
    i_shape: Tuple[int, int]
    o_shape: Tuple[int, int]
    i_freq: float = 1.0
    o_freq: float = 1.0
    reuse: Tuple[int, int] = (1, 1)
    stage: int = 1

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("stage name must be non-empty")
        if self.kind not in ALL_KINDS:
            raise ValidationError(
                f"kind must be one of {ALL_KINDS}, got {self.kind!r}"
            )
        for label, shape in (("i_shape", self.i_shape),
                             ("o_shape", self.o_shape)):
            if len(shape) != 2 or any(int(v) <= 0 for v in shape):
                raise ValidationError(
                    f"{label} must be two positive ints, got {shape}"
                )
        if self.i_freq <= 0 or self.o_freq <= 0:
            raise ValidationError("i_freq and o_freq must be positive")
        if len(self.reuse) != 2 or any(int(v) <= 0 for v in self.reuse):
            raise ValidationError(
                f"reuse must be two positive ints, got {self.reuse}"
            )
        if self.stage <= 0:
            raise ValidationError("stage (pipeline depth) must be positive")

    # ------------------------------------------------------------------
    @property
    def is_global(self) -> bool:
        """True for global-dependent operations (Eqn. 7 applies)."""
        return self.kind in GLOBAL_KINDS

    @property
    def reuse_factor(self) -> int:
        """Total input reuse β (product over dimensions)."""
        return int(self.reuse[0]) * int(self.reuse[1])

    @property
    def tau_in(self) -> float:
        """Fresh input elements consumed per cycle (τ_in).

        Note: the paper's Eqn. 6 divides the stencil rate by the reuse
        factor β, but β counts *re-reads from the buffer*, not fresh
        arrivals — a 2x3 stencil consumes one new column per output just
        like Fig. 3's line buffer.  We therefore keep the fresh rate at
        ``ρ_in / f_in`` for every kind and apply β to the buffer
        working-set floor instead, which preserves element-volume
        conservation through the pipeline.
        """
        return float(self.i_shape[0]) / self.i_freq

    @property
    def tau_out(self) -> float:
        """Output elements produced per cycle (τ_out)."""
        return float(self.o_shape[0]) / self.o_freq

    @property
    def gain(self) -> float:
        """Output elements per fresh input element (W_out / W_in)."""
        return self.tau_out / self.tau_in

    @property
    def element_width_in(self) -> int:
        """Attributes per input element."""
        return int(self.i_shape[1])

    @property
    def element_width_out(self) -> int:
        """Attributes per output element."""
        return int(self.o_shape[1])


def source(name: str, o_shape=(1, 3), o_freq: float = 1.0) -> StageSpec:
    """A producer with no upstream edge (raw point-cloud reader)."""
    return StageSpec(name=name, kind="source", i_shape=(1, 1),
                     o_shape=tuple(o_shape), i_freq=1.0, o_freq=o_freq,
                     reuse=(1, 1), stage=1)


def elementwise(name: str, i_shape=(1, 3), o_shape=None,
                stage: int = 1) -> StageSpec:
    """A 1-in-1-out local op (scaling, thresholding, MLP per point)."""
    if o_shape is None:
        o_shape = i_shape
    return StageSpec(name=name, kind="elementwise", i_shape=tuple(i_shape),
                     o_shape=tuple(o_shape), i_freq=1.0, o_freq=1.0,
                     reuse=(1, 1), stage=stage)


def stencil(name: str, i_shape, o_shape, stage: int,
            reuse) -> StageSpec:
    """Listing 1: ``stencil(i_shape, o_shape, stage, reuse)``.

    ``i_freq``/``o_freq`` are implicitly 1 (Fig. 12: "the stencil
    operation's input and output frequency are implicitly defined as 1").
    """
    return StageSpec(name=name, kind="stencil", i_shape=tuple(i_shape),
                     o_shape=tuple(o_shape), i_freq=1.0, o_freq=1.0,
                     reuse=tuple(reuse), stage=stage)


def reduction(name: str, i_shape, o_shape, stage: int,
              o_freq: float) -> StageSpec:
    """Listing 1: ``reduction(i_shape, o_shape, stage, o_freq)``.

    A group of inputs contributes to one output; no input reuse,
    ``i_freq`` implicitly 1.
    """
    return StageSpec(name=name, kind="reduction", i_shape=tuple(i_shape),
                     o_shape=tuple(o_shape), i_freq=1.0, o_freq=o_freq,
                     reuse=(1, 1), stage=stage)


def global_op(name: str, i_shape, o_shape, i_freq: float, o_freq: float,
              reuse, stage: int) -> StageSpec:
    """Listing 1: ``global_op(i_shape, o_shape, i_freq, o_freq, reuse,
    stage)`` — sorting, kNN search, range search."""
    return StageSpec(name=name, kind="global", i_shape=tuple(i_shape),
                     o_shape=tuple(o_shape), i_freq=i_freq, o_freq=o_freq,
                     reuse=tuple(reuse), stage=stage)


def sink(name: str, i_shape=(1, 3)) -> StageSpec:
    """A consumer with no downstream edge (DMA writer / result drain)."""
    return StageSpec(name=name, kind="sink", i_shape=tuple(i_shape),
                     o_shape=(1, 1), i_freq=1.0, o_freq=1.0,
                     reuse=(1, 1), stage=1)
