"""Optimisers for the autograd engine."""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import ValidationError
from repro.nn.tensor import Tensor


class Optimizer:
    """Base optimiser over a fixed parameter list."""

    def __init__(self, parameters) -> None:
        self.parameters: List[Tensor] = list(parameters)
        if not self.parameters:
            raise ValidationError("optimizer needs at least one parameter")

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with classical momentum."""

    def __init__(self, parameters, lr: float = 0.01,
                 momentum: float = 0.0) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValidationError("learning rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValidationError("momentum must lie in [0, 1)")
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            velocity *= self.momentum
            velocity -= self.lr * param.grad
            param.data += velocity


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015)."""

    def __init__(self, parameters, lr: float = 0.001, beta1: float = 0.9,
                 beta2: float = 0.999, eps: float = 1e-8) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValidationError("learning rate must be positive")
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValidationError("betas must lie in [0, 1)")
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step += 1
        bias1 = 1.0 - self.beta1 ** self._step
        bias2 = 1.0 - self.beta2 ** self._step
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            m *= self.beta1
            m += (1.0 - self.beta1) * param.grad
            v *= self.beta2
            v += (1.0 - self.beta2) * param.grad ** 2
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
