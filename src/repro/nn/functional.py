"""Composite differentiable functions built on the Tensor engine."""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.nn.tensor import Tensor


def log_softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along *axis*."""
    shifted = logits - Tensor(logits.data.max(axis=axis, keepdims=True))
    log_norm = shifted.exp().sum(axis=axis, keepdims=True).log()
    return shifted - log_norm


def softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Softmax along *axis*."""
    return log_softmax(logits, axis=axis).exp()


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean cross-entropy of ``(N, C)`` logits against integer targets."""
    targets = np.asarray(targets, dtype=np.int64)
    if logits.ndim != 2:
        raise ValidationError("logits must be (N, C)")
    n, n_classes = logits.shape
    if targets.shape != (n,):
        raise ValidationError(
            f"targets must have shape ({n},), got {targets.shape}"
        )
    if targets.size and (targets.min() < 0 or targets.max() >= n_classes):
        raise ValidationError("target labels out of range")
    log_probs = log_softmax(logits, axis=-1)
    one_hot = np.zeros((n, n_classes))
    one_hot[np.arange(n), targets] = 1.0
    picked = log_probs * Tensor(one_hot)
    return -picked.sum() * (1.0 / max(1, n))


def accuracy_from_logits(logits: Tensor, targets: np.ndarray) -> float:
    """Classification accuracy of ``(N, C)`` logits."""
    predicted = np.argmax(logits.data, axis=-1)
    targets = np.asarray(targets)
    return float(np.mean(predicted == targets))


def max_pool_groups(features: Tensor) -> Tensor:
    """Max over the neighbour axis of ``(M, K, F)`` grouped features."""
    if features.ndim != 3:
        raise ValidationError("grouped features must be (M, K, F)")
    return features.max(axis=1)
