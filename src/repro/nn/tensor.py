"""A small reverse-mode autograd engine over NumPy arrays.

Implements exactly the operator set PointNet++-style networks need:
broadcasting arithmetic, matmul, ReLU/exp/log, axis reductions (sum, mean,
max), reshape/transpose, row gathering (for neighbourhood grouping), and
concatenation.  Gradients flow through these *local* operations only — the
neighbour searches of :mod:`repro.core.cotraining` produce plain integer
indices, which is how the paper sidesteps the non-differentiability of its
two techniques (Sec. 4.3).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ValidationError


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum *grad* down to *shape*, inverting NumPy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum leading broadcast axes.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum axes that were size-1 in the original shape.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """An array node in the autograd graph."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(self, data, requires_grad: bool = False) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad)
        self.grad: Optional[np.ndarray] = None
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()

    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    def __repr__(self) -> str:
        return f"Tensor(shape={self.shape}, grad={self.requires_grad})"

    def numpy(self) -> np.ndarray:
        """The underlying array (do not mutate)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        return Tensor(self.data.copy())

    # ------------------------------------------------------------------
    # Graph machinery
    # ------------------------------------------------------------------
    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad += grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Reverse-mode sweep from this node."""
        if grad is None:
            if self.data.size != 1:
                raise ValidationError(
                    "backward() without a gradient requires a scalar"
                )
            grad = np.ones_like(self.data)
        topo: List[Tensor] = []
        seen = set()

        def visit(node: "Tensor") -> None:
            if id(node) in seen:
                return
            seen.add(id(node))
            for parent in node._parents:
                visit(parent)
            topo.append(node)

        visit(self)
        grads = {id(self): np.asarray(grad, dtype=np.float64)}
        for node in reversed(topo):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.requires_grad:
                node._accumulate(node_grad)
            if node._backward is None:
                continue
            for parent, parent_grad in node._backward(node_grad):
                if parent_grad is None:
                    continue
                key = id(parent)
                if key in grads:
                    grads[key] = grads[key] + parent_grad
                else:
                    grads[key] = parent_grad

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def _make(self, data: np.ndarray, parents: Sequence["Tensor"],
              backward) -> "Tensor":
        out = Tensor(data)
        if any(p.requires_grad or p._parents for p in parents):
            out._parents = tuple(parents)
            out._backward = backward
        return out

    @staticmethod
    def _coerce(value) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def __add__(self, other) -> "Tensor":
        other = self._coerce(other)

        def backward(grad):
            return [(self, _unbroadcast(grad, self.shape)),
                    (other, _unbroadcast(grad, other.shape))]

        return self._make(self.data + other.data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad):
            return [(self, -grad)]

        return self._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        return self + (-self._coerce(other))

    def __rsub__(self, other) -> "Tensor":
        return self._coerce(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = self._coerce(other)

        def backward(grad):
            return [(self, _unbroadcast(grad * other.data, self.shape)),
                    (other, _unbroadcast(grad * self.data, other.shape))]

        return self._make(self.data * other.data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._coerce(other)

        def backward(grad):
            return [
                (self, _unbroadcast(grad / other.data, self.shape)),
                (other, _unbroadcast(-grad * self.data / other.data ** 2,
                                     other.shape)),
            ]

        return self._make(self.data / other.data, (self, other), backward)

    def __pow__(self, exponent: float) -> "Tensor":
        exponent = float(exponent)

        def backward(grad):
            return [(self,
                     grad * exponent * self.data ** (exponent - 1.0))]

        return self._make(self.data ** exponent, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = self._coerce(other)
        if other.ndim != 2:
            raise ValidationError("matmul right operand must be 2D")

        def backward(grad):
            grad_self = grad @ other.data.T
            left = self.data.reshape(-1, self.data.shape[-1])
            grad_other = left.T @ grad.reshape(-1, grad.shape[-1])
            return [(self, grad_self), (other, grad_other)]

        return self._make(self.data @ other.data, (self, other), backward)

    # ------------------------------------------------------------------
    # Nonlinearities / elementwise
    # ------------------------------------------------------------------
    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(grad):
            return [(self, grad * mask)]

        return self._make(self.data * mask, (self,), backward)

    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad):
            return [(self, grad * out_data)]

        return self._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        def backward(grad):
            return [(self, grad / self.data)]

        return self._make(np.log(self.data), (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad):
            return [(self, grad * (1.0 - out_data ** 2))]

        return self._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad):
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            return [(self, np.broadcast_to(g, self.data.shape).copy())]

        return self._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        expanded = self.data.max(axis=axis, keepdims=True)
        mask = self.data == expanded
        # Split ties evenly so the gradient stays well-defined.
        mask = mask / mask.sum(axis=axis, keepdims=True)

        def backward(grad):
            g = np.asarray(grad)
            if not keepdims:
                g = np.expand_dims(g, axis)
            return [(self, mask * g)]

        return self._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Shape / indexing
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape

        def backward(grad):
            return [(self, grad.reshape(original))]

        return self._make(self.data.reshape(shape), (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        inverse = np.argsort(axes)

        def backward(grad):
            return [(self, grad.transpose(inverse))]

        return self._make(self.data.transpose(axes), (self,), backward)

    def gather_rows(self, indices: np.ndarray) -> "Tensor":
        """Index rows along axis 0 with an integer array of any shape.

        ``out[..., :] = self[indices[...], :]`` — the grouping gather of
        PointNet++; the backward scatters gradients back with accumulation.
        """
        indices = np.asarray(indices, dtype=np.int64)
        if self.ndim != 2:
            raise ValidationError("gather_rows requires a 2D tensor")
        if indices.size and (indices.min() < 0
                             or indices.max() >= self.shape[0]):
            raise ValidationError("gather indices out of range")
        out_data = self.data[indices]

        def backward(grad):
            grad_self = np.zeros_like(self.data)
            flat_idx = indices.reshape(-1)
            flat_grad = grad.reshape(-1, self.shape[1])
            np.add.at(grad_self, flat_idx, flat_grad)
            return [(self, grad_self)]

        return self._make(out_data, (self,), backward)


def concat(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along *axis* with gradient routing."""
    tensors = [Tensor._coerce(t) for t in tensors]
    if not tensors:
        raise ValidationError("concat needs at least one tensor")
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    splits = np.cumsum(sizes)[:-1]

    def backward(grad):
        pieces = np.split(grad, splits, axis=axis)
        return list(zip(tensors, pieces))

    out = Tensor(data)
    if any(t.requires_grad or t._parents for t in tensors):
        out._parents = tuple(tensors)
        out._backward = backward
    return out


def stack_rows(tensors: Sequence[Tensor]) -> Tensor:
    """Stack 1D/2D tensors along a new axis 0."""
    tensors = [Tensor._coerce(t) for t in tensors]
    data = np.stack([t.data for t in tensors])

    def backward(grad):
        return [(t, grad[i]) for i, t in enumerate(tensors)]

    out = Tensor(data)
    if any(t.requires_grad or t._parents for t in tensors):
        out._parents = tuple(tensors)
        out._backward = backward
    return out
