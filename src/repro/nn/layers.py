"""Neural-network layers over the autograd Tensor."""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

import numpy as np

from repro.errors import ValidationError
from repro.nn.tensor import Tensor


class Module:
    """Base class: parameter discovery and train/eval mode switching."""

    def __init__(self) -> None:
        self.training = True

    def parameters(self) -> Iterator[Tensor]:
        """Yield all trainable tensors, recursing into sub-modules."""
        for value in self.__dict__.values():
            if isinstance(value, Tensor) and value.requires_grad:
                yield value
            elif isinstance(value, Module):
                yield from value.parameters()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.parameters()

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def train(self) -> "Module":
        self._set_mode(True)
        return self

    def eval(self) -> "Module":
        self._set_mode(False)
        return self

    def _set_mode(self, training: bool) -> None:
        self.training = training
        for value in self.__dict__.values():
            if isinstance(value, Module):
                value._set_mode(training)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        item._set_mode(training)

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):
        raise NotImplementedError


class Linear(Module):
    """Affine layer ``y = x W + b`` with Kaiming-uniform init."""

    def __init__(self, in_features: int, out_features: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValidationError("feature counts must be positive")
        rng = rng or np.random.default_rng(0)
        bound = float(np.sqrt(6.0 / in_features))
        self.weight = Tensor(
            rng.uniform(-bound, bound, size=(in_features, out_features)),
            requires_grad=True)
        self.bias = Tensor(np.zeros(out_features), requires_grad=True)

    def forward(self, x: Tensor) -> Tensor:
        return x @ self.weight + self.bias


class ReLU(Module):
    """Rectified linear unit."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class BatchNorm(Module):
    """Normalisation over all axes but the last, with running stats.

    With our batch-of-one training over point sets, normalising across
    points plays the role PyTorch's BatchNorm1d plays in PointNet++.
    """

    def __init__(self, n_features: int, momentum: float = 0.1,
                 eps: float = 1e-5) -> None:
        super().__init__()
        if n_features <= 0:
            raise ValidationError("n_features must be positive")
        if not 0.0 < momentum < 1.0:
            raise ValidationError("momentum must lie in (0, 1)")
        self.gamma = Tensor(np.ones(n_features), requires_grad=True)
        self.beta = Tensor(np.zeros(n_features), requires_grad=True)
        self.running_mean = np.zeros(n_features)
        self.running_var = np.ones(n_features)
        self.momentum = momentum
        self.eps = eps

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.gamma.shape[0]:
            raise ValidationError(
                f"expected {self.gamma.shape[0]} features, got {x.shape[-1]}"
            )
        axes = tuple(range(x.ndim - 1))
        if self.training:
            mean = x.data.mean(axis=axes)
            var = x.data.var(axis=axes)
            self.running_mean = ((1 - self.momentum) * self.running_mean
                                 + self.momentum * mean)
            self.running_var = ((1 - self.momentum) * self.running_var
                                + self.momentum * var)
        else:
            mean, var = self.running_mean, self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        normalised = (x - Tensor(mean)) * Tensor(inv_std)
        return normalised * self.gamma + self.beta


class Dropout(Module):
    """Inverted dropout (identity in eval mode)."""

    def __init__(self, p: float = 0.5,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValidationError("dropout probability must be in [0, 1)")
        self.p = p
        self.rng = rng or np.random.default_rng(0)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        mask = (self.rng.uniform(size=x.shape) >= self.p) / (1.0 - self.p)
        return x * Tensor(mask)


class Sequential(Module):
    """A chain of modules applied in order."""

    def __init__(self, modules: Sequence[Module]) -> None:
        super().__init__()
        self.modules: List[Module] = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        for module in self.modules:
            x = module(x)
        return x


def mlp(dims: Sequence[int], rng: Optional[np.random.Generator] = None,
        batch_norm: bool = True, final_activation: bool = False
        ) -> Sequential:
    """Build ``Linear(+BN)+ReLU`` stacks from a dimension list."""
    if len(dims) < 2:
        raise ValidationError("mlp needs at least input and output dims")
    rng = rng or np.random.default_rng(0)
    modules: List[Module] = []
    for i, (d_in, d_out) in enumerate(zip(dims[:-1], dims[1:])):
        modules.append(Linear(d_in, d_out, rng=rng))
        last = i == len(dims) - 2
        if not last or final_activation:
            if batch_norm:
                modules.append(BatchNorm(d_out))
            modules.append(ReLU())
    return Sequential(modules)
