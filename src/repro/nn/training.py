"""Training loops with integrated co-training (paper Sec. 4.3, Fig. 16).

``train_classifier`` / ``train_segmenter`` train the PointNet++ models with
grouping plans generated under a *training* StreamGrid config; evaluation
functions re-plan under an arbitrary *deployment* config.  Co-training is
then simply: train-config == deploy-config.  The Fig. 16 study trains with
the Base config ("w/o co-training") or the deployment config ("w/
co-training") and evaluates both under increasing chunk counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.config import StreamGridConfig
from repro.datasets.modelnet import ClassificationDataset
from repro.datasets.shapenet import SegmentationDataset
from repro.errors import ValidationError
from repro.nn.functional import cross_entropy
from repro.nn.optim import Adam
from repro.nn.pointnet2 import (
    ClassifierSpec,
    PointNet2Classifier,
    PointNet2Segmenter,
    SegmenterSpec,
    plan_classifier,
    plan_segmenter,
)
from repro.pointcloud.metrics import mean_iou, overall_accuracy


@dataclass
class TrainHistory:
    """Loss/accuracy trajectory of one training run."""

    losses: List[float] = field(default_factory=list)
    train_metric: List[float] = field(default_factory=list)


@dataclass
class ClassifierRun:
    """A trained classifier plus its training history."""

    model: PointNet2Classifier
    history: TrainHistory
    train_config: StreamGridConfig


@dataclass
class SegmenterRun:
    """A trained segmenter plus its training history."""

    model: PointNet2Segmenter
    history: TrainHistory
    train_config: StreamGridConfig


def train_classifier(dataset: ClassificationDataset,
                     config: StreamGridConfig,
                     epochs: int = 20,
                     lr: float = 0.01,
                     seed: int = 0,
                     spec: Optional[ClassifierSpec] = None
                     ) -> ClassifierRun:
    """Train PointNet++(c) with grouping plans under *config*.

    Plans are computed once per sample (they depend only on positions and
    the config) and reused across epochs.
    """
    if epochs <= 0:
        raise ValidationError("epochs must be positive")
    if len(dataset) == 0:
        raise ValidationError("empty dataset")
    spec = spec or ClassifierSpec()
    model = PointNet2Classifier(dataset.n_classes, spec=spec, seed=seed)
    plans = [plan_classifier(s.cloud.positions, config, spec)
             for s in dataset.samples]
    labels = dataset.labels()
    optimizer = Adam(model.parameters(), lr=lr)
    rng = np.random.default_rng(seed)
    history = TrainHistory()
    model.train()
    for _ in range(epochs):
        order = rng.permutation(len(dataset))
        epoch_loss = 0.0
        correct = 0
        for idx in order:
            optimizer.zero_grad()
            logits = model(plans[idx])
            loss = cross_entropy(logits, np.array([labels[idx]]))
            loss.backward()
            optimizer.step()
            epoch_loss += loss.item()
            if int(np.argmax(logits.data)) == labels[idx]:
                correct += 1
        history.losses.append(epoch_loss / len(dataset))
        history.train_metric.append(correct / len(dataset))
    return ClassifierRun(model, history, config)


def evaluate_classifier(run: ClassifierRun,
                        dataset: ClassificationDataset,
                        config: Optional[StreamGridConfig] = None
                        ) -> float:
    """Overall accuracy under a deployment *config* (default: trained)."""
    if len(dataset) == 0:
        raise ValidationError("empty dataset")
    config = config or run.train_config
    run.model.eval()
    predictions = np.empty(len(dataset), dtype=np.int64)
    for i, sample in enumerate(dataset.samples):
        plan = plan_classifier(sample.cloud.positions, config,
                               run.model.spec)
        logits = run.model(plan)
        predictions[i] = int(np.argmax(logits.data))
    run.model.train()
    return overall_accuracy(predictions, dataset.labels())


def train_segmenter(dataset: SegmentationDataset,
                    config: StreamGridConfig,
                    epochs: int = 20,
                    lr: float = 0.01,
                    seed: int = 0,
                    spec: Optional[SegmenterSpec] = None) -> SegmenterRun:
    """Train PointNet++(s) with grouping plans under *config*."""
    if epochs <= 0:
        raise ValidationError("epochs must be positive")
    if len(dataset) == 0:
        raise ValidationError("empty dataset")
    spec = spec or SegmenterSpec()
    model = PointNet2Segmenter(dataset.n_parts, spec=spec, seed=seed)
    plans = [plan_segmenter(s.cloud.positions, config, spec)
             for s in dataset.samples]
    optimizer = Adam(model.parameters(), lr=lr)
    rng = np.random.default_rng(seed)
    history = TrainHistory()
    model.train()
    for _ in range(epochs):
        order = rng.permutation(len(dataset))
        epoch_loss = 0.0
        ious: List[float] = []
        for idx in order:
            sample = dataset.samples[idx]
            optimizer.zero_grad()
            logits = model(plans[idx])
            loss = cross_entropy(logits, sample.labels)
            loss.backward()
            optimizer.step()
            epoch_loss += loss.item()
            predicted = np.argmax(logits.data, axis=-1)
            ious.append(mean_iou(predicted, sample.labels,
                                 dataset.n_parts))
        history.losses.append(epoch_loss / len(dataset))
        history.train_metric.append(float(np.mean(ious)))
    return SegmenterRun(model, history, config)


def evaluate_segmenter(run: SegmenterRun, dataset: SegmentationDataset,
                       config: Optional[StreamGridConfig] = None) -> float:
    """Mean IoU under a deployment *config* (default: trained config)."""
    if len(dataset) == 0:
        raise ValidationError("empty dataset")
    config = config or run.train_config
    run.model.eval()
    ious: List[float] = []
    for sample in dataset.samples:
        plan = plan_segmenter(sample.cloud.positions, config,
                              run.model.spec)
        logits = run.model(plan)
        predicted = np.argmax(logits.data, axis=-1)
        ious.append(mean_iou(predicted, sample.labels, dataset.n_parts))
    run.model.train()
    return float(np.mean(ious))


def cotraining_study(train_ds: ClassificationDataset,
                     test_ds: ClassificationDataset,
                     chunk_counts,
                     make_config,
                     epochs: int = 15,
                     seed: int = 0) -> Dict[int, Dict[str, float]]:
    """The Fig. 16 experiment over classification.

    ``make_config(n_chunks)`` builds the deployment config for each chunk
    count.  For each count we evaluate a model trained *without*
    co-training (Base plans) and one trained *with* co-training
    (deployment plans); returns ``{n_chunks: {"with": acc, "without":
    acc}}``.
    """
    from repro.core.cotraining import baseline_config

    chunk_counts = list(chunk_counts)
    if not chunk_counts:
        raise ValidationError("need at least one chunk count")
    base_run = train_classifier(train_ds, baseline_config(),
                                epochs=epochs, seed=seed)
    results: Dict[int, Dict[str, float]] = {}
    for n_chunks in chunk_counts:
        deploy = make_config(n_chunks)
        without = evaluate_classifier(base_run, test_ds, deploy)
        cotrained = train_classifier(train_ds, deploy, epochs=epochs,
                                     seed=seed)
        with_ct = evaluate_classifier(cotrained, test_ds, deploy)
        results[n_chunks] = {"with": with_ct, "without": without}
    return results
