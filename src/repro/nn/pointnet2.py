"""PointNet++-style networks whose grouping honours StreamGrid configs.

The paper evaluates PointNet++(c) and PointNet++(s); both are hierarchies
of *set abstraction* (SA) levels — farthest-point sampling, ball-query
grouping, per-group MLP, max pooling — plus, for segmentation, *feature
propagation* (FP) levels that interpolate coarse features back onto dense
points via kNN.

The ball queries and kNN are the global-dependent operations the paper
modifies, so they run through :class:`~repro.core.cotraining.GroupingContext`,
which applies compulsory splitting and deterministic termination exactly
as configured.  Because the searches only produce integer indices, the
*plan* of a forward pass (centroids, group indices, interpolation weights)
is a pure function of (positions, config): planning is done once per cloud
(:func:`plan_classifier`, :func:`plan_segmenter`) and reused across
epochs, which is also how gradients bypass the non-differentiable ops
(Sec. 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.config import StreamGridConfig
from repro.core.cotraining import GroupingContext
from repro.errors import ValidationError
from repro.nn.functional import max_pool_groups
from repro.nn.layers import Dropout, Linear, Module, mlp
from repro.nn.tensor import Tensor, concat
from repro.pointcloud.transforms import farthest_point_sample


# ----------------------------------------------------------------------
# Layer specs and plans
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SALevelSpec:
    """Geometry of one set-abstraction level."""

    n_centroids: int
    radius: float
    n_neighbors: int

    def __post_init__(self) -> None:
        if self.n_centroids <= 0 or self.n_neighbors <= 0:
            raise ValidationError("centroid/neighbour counts must be > 0")
        if self.radius <= 0:
            raise ValidationError("radius must be positive")


@dataclass
class SAPlan:
    """Precomputed grouping of one SA level for one cloud."""

    centroid_indices: np.ndarray     # (M,)
    group_indices: np.ndarray        # (M, K) into the level's input points
    centroid_positions: np.ndarray   # (M, 3)
    input_positions: np.ndarray      # (N_in, 3)


@dataclass
class FPPlan:
    """Precomputed interpolation of one feature-propagation level."""

    neighbor_indices: np.ndarray     # (N_dense, 3) into sparse points
    weights: np.ndarray              # (N_dense, 3) inverse-distance weights


def plan_sa_level(positions: np.ndarray, spec: SALevelSpec,
                  config: StreamGridConfig) -> SAPlan:
    """Sample centroids and ball-group under the StreamGrid config."""
    positions = np.asarray(positions, dtype=np.float64)
    n = len(positions)
    n_centroids = min(spec.n_centroids, n)
    centroid_idx = farthest_point_sample(positions, n_centroids)
    centroids = positions[centroid_idx]
    with GroupingContext(positions, config,
                         calibration_k=spec.n_neighbors) as context:
        # ball_group returns the (M, K) group-index array directly.
        groups = context.ball_group(centroids, spec.radius,
                                    spec.n_neighbors)
    return SAPlan(centroid_idx, groups, centroids, positions)


def plan_fp_level(dense_positions: np.ndarray,
                  sparse_positions: np.ndarray,
                  config: StreamGridConfig, k: int = 3) -> FPPlan:
    """kNN interpolation weights from sparse centroids to dense points."""
    dense_positions = np.asarray(dense_positions, dtype=np.float64)
    sparse_positions = np.asarray(sparse_positions, dtype=np.float64)
    k = min(k, len(sparse_positions))
    with GroupingContext(sparse_positions, config,
                         calibration_k=k) as context:
        indices = context.knn_group(dense_positions, k)
    diffs = sparse_positions[indices] - dense_positions[:, None, :]
    dists = np.linalg.norm(diffs, axis=-1)
    inv = 1.0 / np.maximum(dists, 1e-8)
    weights = inv / inv.sum(axis=1, keepdims=True)
    return FPPlan(indices, weights)


# ----------------------------------------------------------------------
# Differentiable layers
# ----------------------------------------------------------------------
class SetAbstraction(Module):
    """Grouping + shared MLP + max pooling for one SA level."""

    def __init__(self, in_features: int, mlp_dims: List[int],
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        # +3 for the relative coordinates concatenated to every neighbour.
        self.mlp = mlp([in_features + 3] + list(mlp_dims), rng=rng,
                       final_activation=True)

    def forward(self, features: Optional[Tensor], plan: SAPlan) -> Tensor:
        rel = (plan.input_positions[plan.group_indices]
               - plan.centroid_positions[:, None, :])
        rel_t = Tensor(rel)
        if features is None:
            # First level: absolute coordinates act as the input features
            # (PointNet++'s use_xyz convention).
            features = Tensor(plan.input_positions)
        gathered = features.gather_rows(plan.group_indices)
        grouped = concat([gathered, rel_t], axis=-1)
        return max_pool_groups(self.mlp(grouped))


class FeaturePropagation(Module):
    """kNN interpolation + unit MLP for one FP level."""

    def __init__(self, in_features: int, mlp_dims: List[int],
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        # No BatchNorm here: normalising the concatenated skip features
        # washes out the raw-coordinate channel the decoder relies on.
        self.mlp = mlp([in_features] + list(mlp_dims), rng=rng,
                       batch_norm=False, final_activation=True)

    def forward(self, sparse_features: Tensor,
                skip_features: Optional[Tensor], plan: FPPlan) -> Tensor:
        gathered = sparse_features.gather_rows(plan.neighbor_indices)
        weights = Tensor(plan.weights[:, :, None])
        interpolated = (gathered * weights).sum(axis=1)
        if skip_features is not None:
            interpolated = concat([interpolated, skip_features], axis=-1)
        return self.mlp(interpolated)


# ----------------------------------------------------------------------
# Classification model
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ClassifierSpec:
    """Architecture of the PointNet++(c) reproduction."""

    sa1: SALevelSpec = SALevelSpec(32, 0.35, 16)
    sa2: SALevelSpec = SALevelSpec(8, 0.8, 8)
    sa1_dims: tuple = (32, 32)
    sa2_dims: tuple = (64, 64)
    head_dims: tuple = (32,)
    dropout: float = 0.2


@dataclass
class ClassifierPlan:
    """All groupings of one cloud under one StreamGrid config."""

    sa1: SAPlan
    sa2: SAPlan


def plan_classifier(positions: np.ndarray, config: StreamGridConfig,
                    spec: Optional[ClassifierSpec] = None
                    ) -> ClassifierPlan:
    """Plan both SA levels for one cloud."""
    spec = spec or ClassifierSpec()
    sa1 = plan_sa_level(positions, spec.sa1, config)
    sa2 = plan_sa_level(sa1.centroid_positions, spec.sa2, config)
    return ClassifierPlan(sa1, sa2)


class PointNet2Classifier(Module):
    """Two SA levels, global max pool, MLP head -> class logits."""

    def __init__(self, n_classes: int,
                 spec: Optional[ClassifierSpec] = None,
                 seed: int = 0) -> None:
        super().__init__()
        if n_classes <= 0:
            raise ValidationError("n_classes must be positive")
        self.spec = spec or ClassifierSpec()
        rng = np.random.default_rng(seed)
        self.sa1 = SetAbstraction(3, list(self.spec.sa1_dims), rng=rng)
        self.sa2 = SetAbstraction(self.spec.sa1_dims[-1],
                                  list(self.spec.sa2_dims), rng=rng)
        self.dropout = Dropout(self.spec.dropout,
                               rng=np.random.default_rng(seed + 1))
        head_in = self.spec.sa2_dims[-1]
        # The pooled global feature is a single row: BatchNorm over a
        # batch of one would zero it, so the head runs without BN.
        self.head = mlp([head_in] + list(self.spec.head_dims), rng=rng,
                        batch_norm=False, final_activation=True)
        self.logits = Linear(self.spec.head_dims[-1], n_classes, rng=rng)

    def forward(self, plan: ClassifierPlan) -> Tensor:
        f1 = self.sa1(None, plan.sa1)
        f2 = self.sa2(f1, plan.sa2)
        pooled = f2.max(axis=0, keepdims=True)
        hidden = self.dropout(self.head(pooled))
        return self.logits(hidden)


# ----------------------------------------------------------------------
# Segmentation model
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SegmenterSpec:
    """Architecture of the PointNet++(s) reproduction."""

    sa1: SALevelSpec = SALevelSpec(48, 0.3, 12)
    sa2: SALevelSpec = SALevelSpec(12, 0.7, 8)
    sa1_dims: tuple = (32, 32)
    sa2_dims: tuple = (64, 64)
    fp2_dims: tuple = (64,)
    fp1_dims: tuple = (32,)
    interp_k: int = 3


@dataclass
class SegmenterPlan:
    """All groupings/interpolations of one cloud under one config."""

    sa1: SAPlan
    sa2: SAPlan
    fp2: FPPlan
    fp1: FPPlan
    positions: np.ndarray


def plan_segmenter(positions: np.ndarray, config: StreamGridConfig,
                   spec: Optional[SegmenterSpec] = None) -> SegmenterPlan:
    """Plan both SA and both FP levels for one cloud."""
    spec = spec or SegmenterSpec()
    positions = np.asarray(positions, dtype=np.float64)
    sa1 = plan_sa_level(positions, spec.sa1, config)
    sa2 = plan_sa_level(sa1.centroid_positions, spec.sa2, config)
    fp2 = plan_fp_level(sa1.centroid_positions, sa2.centroid_positions,
                        config, k=spec.interp_k)
    fp1 = plan_fp_level(positions, sa1.centroid_positions, config,
                        k=spec.interp_k)
    return SegmenterPlan(sa1, sa2, fp2, fp1, positions)


class PointNet2Segmenter(Module):
    """SA encoder + FP decoder -> per-point part logits."""

    def __init__(self, n_parts: int,
                 spec: Optional[SegmenterSpec] = None,
                 seed: int = 0) -> None:
        super().__init__()
        if n_parts <= 0:
            raise ValidationError("n_parts must be positive")
        self.spec = spec or SegmenterSpec()
        rng = np.random.default_rng(seed)
        self.sa1 = SetAbstraction(3, list(self.spec.sa1_dims), rng=rng)
        self.sa2 = SetAbstraction(self.spec.sa1_dims[-1],
                                  list(self.spec.sa2_dims), rng=rng)
        fp2_in = self.spec.sa2_dims[-1] + self.spec.sa1_dims[-1]
        self.fp2 = FeaturePropagation(fp2_in, list(self.spec.fp2_dims),
                                      rng=rng)
        fp1_in = self.spec.fp2_dims[-1] + 3
        self.fp1 = FeaturePropagation(fp1_in, list(self.spec.fp1_dims),
                                      rng=rng)
        self.logits = Linear(self.spec.fp1_dims[-1], n_parts, rng=rng)

    def forward(self, plan: SegmenterPlan) -> Tensor:
        f1 = self.sa1(None, plan.sa1)
        f2 = self.sa2(f1, plan.sa2)
        up2 = self.fp2(f2, f1, plan.fp2)
        up1 = self.fp1(up2, Tensor(plan.positions), plan.fp1)
        return self.logits(up1)
