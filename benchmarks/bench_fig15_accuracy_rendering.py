"""Fig. 15: rendering quality, Base vs CS (3DGS).

Paper setting: the Gaussian cloud is chunked on a dense spatial grid; the
global depth sort becomes a hierarchical per-chunk sort; PSNR drops by
~0.1 dB on Tanks&Temples / DeepBlending.  We render two synthetic scenes
with the exact sorter and the chunked sorter and report PSNR of the CS
image against the exactly-sorted image.
"""

from repro.datasets import scene_by_name
from repro.splatting import PinholeCamera, compare_rendering

from _common import emit

SCENES = ("tank_temple_like", "deep_blending_like")


def _run():
    camera = PinholeCamera(64, 64, 60.0)
    return {name: compare_rendering(scene_by_name(name, seed=0), camera,
                                    grid_shape=(4, 4, 6))
            for name in SCENES}


def test_bench_fig15(benchmark):
    reports = benchmark.pedantic(_run, rounds=1, iterations=1)

    lines = ["scene               PSNR_CS[dB]  comparators base->CS  "
             "sort buffer base->CS"]
    for name in SCENES:
        r = reports[name]
        lines.append(
            f"{name:18s}  {r['psnr_cs_db']:9.2f}  "
            f"{r['comparators_base']:>9d} -> {r['comparators_cs']:<8d}  "
            f"{r['buffer_base']:>8d} -> {r['buffer_cs']:<8d}")
    lines.append("paper shape: negligible quality loss (~0.1 dB) with a "
                 "far cheaper, bounded-buffer sort")
    emit("fig15_accuracy_rendering", lines)

    for name in SCENES:
        assert reports[name]["psnr_cs_db"] > 25.0
        assert reports[name]["buffer_cs"] < reports[name]["buffer_base"]
