"""Sec. 3 profile: kd-tree traversal step distribution (k=32).

Paper statistic (KITTI, ~120k points): mean 8.4e3 steps, std 6.8e3.  Our
simulated LiDAR clouds are smaller, so the absolute step counts shrink
with the tree; the reproduced *shape* is a large mean with a std of the
same order — the non-determinism motivating deterministic termination.
"""

from repro.core import profile_step_distribution
from repro.datasets import make_lidar_cloud

from _common import emit


def test_bench_step_distribution(benchmark):
    cloud = make_lidar_cloud(n_points=2048, seed=0)
    pts = cloud.positions
    queries = pts[:: max(1, len(pts) // 128)]

    profile = benchmark(profile_step_distribution, pts, queries, 32)

    emit("sec3_step_profile", [
        "kd-tree traversal steps for k=32 (simulated LiDAR cloud)",
        f"n_points={len(pts)}  n_queries={profile.n_queries}",
        f"mean={profile.mean:.1f}  std={profile.std:.1f}  "
        f"min={profile.minimum}  max={profile.maximum}",
        f"std/mean={profile.std / profile.mean:.2f} "
        "(paper: 6.8e3/8.4e3 = 0.81 on KITTI-scale trees)",
    ])
    assert profile.std > 0.05 * profile.mean
