"""Fig. 16: accuracy with and without co-training vs. chunk count.

The paper trains classification models with and without the CS/DT
behaviours in the training loop and evaluates under increasing chunk
counts: without co-training accuracy collapses at high chunk counts;
with co-training it stays high.
"""

import numpy as np

from repro.core import StreamGridConfig, TerminationConfig
from repro.core.splitting import splitting_for_chunks
from repro.datasets import make_modelnet
from repro.nn import ClassifierSpec, SALevelSpec, cotraining_study

from _common import emit

CHUNK_COUNTS = (1, 2, 4, 8, 16)


def _make_config(n_chunks: int) -> StreamGridConfig:
    return StreamGridConfig(
        splitting=splitting_for_chunks(n_chunks, kernel_width=1),
        termination=TerminationConfig(profile_queries=8),
        use_splitting=True, use_termination=True)


def _run():
    ds = make_modelnet(8, n_points=96,
                       class_names=("sphere", "box", "plane", "cross"),
                       seed=0)
    train, test = ds.split(0.6, np.random.default_rng(1))
    spec = ClassifierSpec(sa1=SALevelSpec(24, 0.45, 12),
                          sa2=SALevelSpec(8, 0.9, 6))
    import repro.nn.training as training

    original = training.train_classifier

    def patched(dataset, config, **kwargs):
        kwargs.setdefault("spec", spec)
        kwargs.setdefault("lr", 0.003)
        return original(dataset, config, **kwargs)

    training.train_classifier = patched
    try:
        return cotraining_study(train, test, CHUNK_COUNTS, _make_config,
                                epochs=15, seed=0)
    finally:
        training.train_classifier = original


def test_bench_fig16(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)

    lines = ["n_chunks  acc_without_cotraining  acc_with_cotraining"]
    for n in CHUNK_COUNTS:
        lines.append(f"{n:>8d}  {results[n]['without']:>21.3f}  "
                     f"{results[n]['with']:>18.3f}")
    lines.append("paper shape: without co-training accuracy collapses as "
                 "chunks increase; with co-training it is retained")
    emit("fig16_cotraining", lines)

    # With co-training, the most aggressive split stays usable.
    worst_with = min(results[n]["with"] for n in CHUNK_COUNTS)
    assert worst_with >= 0.25
    # Co-training at the largest chunk count beats the un-co-trained model
    # (or at least matches it).
    assert results[16]["with"] >= results[16]["without"] - 0.05
