"""Recovery-overhead benchmark: streaming through injected faults.

Streams the rolling LiDAR sequence (serial 9-chunk / 8-window
configuration — the tree-rotation reuse case of
``bench_streaming_session``) through a warm :class:`StreamSession`
four ways:

* ``serial / none`` — fault-free serial execution: the bit-exactness
  reference and the fps baseline;
* ``process / none`` — fault-free forked pool: what supervision costs
  when nothing fails;
* ``process / crash`` — a deterministic crash schedule: a worker is
  killed on every K-th work unit of one chosen window (the injector
  counts *units*, so with roughly one unit per window per frame this
  approximates a crash every K frames; the realized fault count is
  reported per row);
* ``process / mixed`` — the crash schedule plus one worker hang
  (detected by the unit timeout, worker killed mid-sleep) and one
  in-unit exception.

Before any timing is trusted, every faulty variant replays the stream
once on a fresh injector and each frame's results are checked
element-for-element against the fault-free serial reference at the
same deadlines — recovery must be invisible in results, only in time.
Each timed repeat constructs a fresh injector + session (injector
counters are cumulative, so reuse would change the schedule).  Rows
record frames/sec, the recovery overhead versus the fault-free run of
the same backend (total and per fired fault), and the exact
retry / respawn / timeout / degradation counters.  Emits
``BENCH_faults.json`` at the repo root (override with ``--output``)
plus a text table under ``benchmarks/results/``.
"""

from __future__ import annotations

import argparse
import json
import os

import numpy as np

from repro.core.config import (
    SplittingConfig,
    StreamGridConfig,
    StreamingSessionConfig,
)
from repro.datasets import make_lidar_stream_frames
from repro.runtime import FaultInjector, FaultSpec, resolve_worker_count
from repro.streaming import StreamSession

from _common import REPO_ROOT, RESULTS_DIR, emit, time_best

_DEFAULT_OUTPUT = os.path.join(REPO_ROOT, "BENCH_faults.json")

#: Serial 9-chunk splitting -> 8 sliding windows (the rolling stream).
_SPLITTING = SplittingConfig(shape=(9, 1, 1), kernel=(2, 1, 1),
                             mode="serial")
_N_CHUNKS = 9

#: (row name, fault schedule builder) — ``None`` builds no injector.
_SCHEDULES = ("none", "crash", "mixed")


def _rolling_frames(n_frames, n_points, seed=7):
    """Sliding windows over one LiDAR stream, advancing one chunk/frame."""
    rolled = max(_N_CHUNKS, (n_points // _N_CHUNKS) * _N_CHUNKS)
    frames = make_lidar_stream_frames(
        n_frames=n_frames, n_points=rolled, advance=rolled // _N_CHUNKS,
        seed=seed)
    return [frame.positions for frame in frames]


def _frame_queries(frames, n_queries, seed=11):
    rng = np.random.default_rng(seed)
    rows = rng.choice(len(frames[0]), size=min(n_queries, len(frames[0])),
                      replace=False)
    return [frame[rows] for frame in frames]


def _fault_specs(schedule, crash_every, hang_duration):
    """The deterministic fault schedule of one benchmark row."""
    if schedule == "none":
        return []
    crash = FaultSpec(kind="crash", window=4, every=crash_every)
    if schedule == "crash":
        return [crash]
    return [
        crash,
        FaultSpec(kind="hang", window=1, nth=2, duration=hang_duration),
        FaultSpec(kind="raise", window=6, nth=3),
    ]


def _run_stream(frames, queries, k, backend, pool_workers, schedule,
                crash_every, unit_timeout, hang_duration):
    """One full warm-session pass; fresh injector + session per call."""
    specs = _fault_specs(schedule, crash_every, hang_duration)
    injector = FaultInjector(specs) if specs else None
    executor = injector.executor(backend) if injector else backend
    config = StreamGridConfig(
        splitting=_SPLITTING, executor=executor,
        executor_workers=None if backend == "serial" else pool_workers)
    # Per-window dispatch: the fault schedule addresses individual
    # windows (a fused unit carries only its lowest member's id, so
    # window-targeted specs would stop matching).  Fused-unit fault
    # recovery is covered by tests/test_arena_fusion.py.
    session_cfg = StreamingSessionConfig(unit_timeout=unit_timeout,
                                         arena_fusion=False)
    with StreamSession(config, k=k, session=session_cfg) as session:
        outcomes = session.run(frames, queries=queries)
        return (outcomes, session.stats, session.effective_executor,
                injector.fire_counts if injector else [])


def _check_equal(name, got, want):
    for fld in ("indices", "distances", "counts", "steps", "terminated"):
        if not np.array_equal(getattr(got, fld), getattr(want, fld)):
            raise AssertionError(
                f"{name}: result field {fld!r} differs from the "
                f"fault-free serial reference")


def run(n_points=8192, n_queries=512, k=16, n_frames=6, repeats=3,
        crash_every=8, unit_timeout=2.0, hang_duration=30.0,
        workers=None, output=_DEFAULT_OUTPUT, check=True,
        results_dir=RESULTS_DIR):
    """Run the fault-recovery comparison; returns (and writes) the payload."""
    pool_workers = workers if workers is not None \
        else max(2, resolve_worker_count(None))
    frames = _rolling_frames(n_frames, n_points)
    queries = _frame_queries(frames, n_queries)

    reference, _, _, _ = _run_stream(
        frames, queries, k, "serial", pool_workers, "none",
        crash_every, unit_timeout, hang_duration)
    reference_deadlines = [frame.deadline for frame in reference]

    rows = []
    clean_s = {}
    for backend, schedule in (("serial", "none"), ("process", "none"),
                              ("process", "crash"), ("process", "mixed")):
        if check and schedule != "none":
            # Correctness gate on its own injector (never the timed one):
            # every frame completes, bit-equal, no permanent fallback.
            outcomes, stats, _, fired = _run_stream(
                frames, queries, k, backend, pool_workers, schedule,
                crash_every, unit_timeout, hang_duration)
            assert len(outcomes) == n_frames
            deadlines = [frame.deadline for frame in outcomes]
            assert deadlines == reference_deadlines, (
                f"{backend}/{schedule}: deadlines diverged under faults")
            for i, (got, want) in enumerate(zip(outcomes, reference)):
                assert got.ok
                _check_equal(f"{backend}/{schedule}/frame{i}",
                             got.result, want.result)
            assert stats.degradations == 0, (
                f"{backend}/{schedule}: ladder stepped down — recovery "
                "should respawn, not permanently degrade")
        elapsed, (outcomes, stats, effective, fired) = time_best(
            lambda: _run_stream(frames, queries, k, backend, pool_workers,
                                schedule, crash_every, unit_timeout,
                                hang_duration), repeats)
        if schedule == "none":
            clean_s[backend] = elapsed
        faults = sum(fired)
        overhead = elapsed - clean_s.get(backend, elapsed)
        rows.append({
            "backend": backend,
            "schedule": schedule,
            "effective": effective,
            "elapsed_s": elapsed,
            "fps": n_frames / elapsed,
            "faults_fired": faults,
            "fire_counts": list(fired),
            "recovery_overhead_s": overhead if schedule != "none" else 0.0,
            "overhead_per_fault_s": (overhead / faults)
            if schedule != "none" and faults else 0.0,
            "retries": stats.retries,
            "respawns": stats.respawns,
            "timeouts": stats.timeouts,
            "degradations": stats.degradations,
            "frames_quarantined": stats.frames_quarantined,
        })
    faulty = [row for row in rows if row["schedule"] != "none"]
    payload = {
        "benchmark": "fault_recovery",
        "workload": {"n_points": n_points, "n_queries": n_queries,
                     "k": k, "n_frames": n_frames, "repeats": repeats,
                     "crash_every_units": crash_every,
                     "unit_timeout_s": unit_timeout,
                     "hang_duration_s": hang_duration,
                     "workers": workers, "pool_workers": pool_workers,
                     "cpu_count": os.cpu_count()},
        "results": rows,
        "all_faulty_rows_fired": all(row["faults_fired"] > 0
                                     for row in faulty),
        "no_permanent_fallback": all(row["degradations"] == 0
                                     for row in faulty),
        "max_recovery_overhead_s": max(
            (row["recovery_overhead_s"] for row in faulty), default=0.0),
    }
    if output:
        with open(output, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
    lines = [f"{'backend':8s} {'schedule':9s} {'eff':8s} {'fps':>8s} "
             f"{'faults':>7s} {'overhead':>9s} {'per-fault':>10s} "
             f"{'retry':>6s} {'spawn':>6s} {'tmout':>6s} {'degr':>5s}"]
    for row in rows:
        lines.append(
            f"{row['backend']:8s} {row['schedule']:9s} "
            f"{row['effective']:8s} {row['fps']:8.2f} "
            f"{row['faults_fired']:7d} "
            f"{row['recovery_overhead_s']:8.3f}s "
            f"{row['overhead_per_fault_s']:9.3f}s "
            f"{row['retries']:6d} {row['respawns']:6d} "
            f"{row['timeouts']:6d} {row['degradations']:5d}")
    lines.append(
        f"every faulty row fired: {payload['all_faulty_rows_fired']}; "
        f"no permanent fallback: {payload['no_permanent_fallback']}; "
        f"max recovery overhead "
        f"{payload['max_recovery_overhead_s']:.3f}s")
    lines.append(
        f"workload: n={n_points}, q={n_queries}, k={k}, "
        f"frames={n_frames}, repeats={repeats}, "
        f"crash_every={crash_every} units, timeout={unit_timeout}s, "
        f"pool_workers={pool_workers}, cpus={os.cpu_count()}")
    emit("fault_recovery", lines, results_dir=results_dir)
    if output:
        print(f"wrote {output}")
    return payload


def smoke(tmp_output=None):
    """Tiny configuration exercising the full harness (pytest smoke).

    Smoke timings are timer noise, so the text table is never persisted
    (``results_dir=None``) — only the JSON goes to ``tmp_output``.
    """
    return run(n_points=360, n_queries=40, k=4, n_frames=3, repeats=1,
               crash_every=3, unit_timeout=1.0, output=tmp_output,
               results_dir=None)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--points", type=int, default=8192)
    parser.add_argument("--queries", type=int, default=512)
    parser.add_argument("--k", type=int, default=16)
    parser.add_argument("--frames", type=int, default=6)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--crash-every", type=int, default=8)
    parser.add_argument("--unit-timeout", type=float, default=2.0)
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--output", default=_DEFAULT_OUTPUT)
    parser.add_argument("--smoke", action="store_true",
                        help="run the tiny smoke configuration")
    args = parser.parse_args()
    if args.smoke:
        smoke(tmp_output=args.output)
        return
    run(n_points=args.points, n_queries=args.queries, k=args.k,
        n_frames=args.frames, repeats=args.repeats,
        crash_every=args.crash_every, unit_timeout=args.unit_timeout,
        workers=args.workers, output=args.output)


if __name__ == "__main__":
    main()
