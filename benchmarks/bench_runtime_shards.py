"""Throughput benchmark: serial vs thread vs process vs shm shards.

Times ``CompulsorySplitter`` batch dispatch on many-window
configurations (a serial-mode 8-window split and a spatial 16-window
split) under the four window-shard runtime backends
(:mod:`repro.runtime`): the inline ``SerialExecutor``, the
``ThreadExecutor`` thread pool, the ``ProcessShardPool`` that pins
window ids to forked workers with the kd-tree / chunk state shipped
once per worker, and the zero-copy ``ShmShardPool`` that stages window
state in shared-memory segments workers attach to instead of
re-forking.  Two operations are measured per backend:

* ``knn`` — uncapped kNN (per-window vectorized scan engine);
* ``knn_capped`` — deadline-capped kNN (per-window lockstep traversal).

Before any timing is trusted, every backend's results are checked
element-for-element against the serial reference (indices, distances,
steps, terminated) — the runtime must be a pure *where-it-runs* change.

Worker counts auto-resolve from the CPU count unless ``--workers`` pins
them, with a floor of two for the pooled backends so the thread pool
and the forked process pool are genuinely exercised even on single-core
hosts (where shards timeshare one core, so the honest expectation is
≈ 1.0x minus IPC overhead, not a win).  Each row records the
``effective`` backend, and the headline pool/serial ratios count only
rows that actually ran the forked pool — fallback rows can never
masquerade as a sharding measurement.

A separate section times bucketed group batching against the classic
repeat-padded grouping math on a deliberately skewed ball-query
workload (dense clump + sparse halo), gated on bit-equal padded
output.  Emits ``BENCH_runtime.json`` at the repo root (override with
``--output``) plus a text table under ``benchmarks/results/``.
"""

from __future__ import annotations

import argparse
import json
import os

import numpy as np

from repro.core.config import SplittingConfig
from repro.core.cotraining import bucket_group_batch, pad_group_batch
from repro.core.splitting import CompulsorySplitter
from repro.runtime import resolve_worker_count
from repro.spatial import KDTree

from _common import REPO_ROOT, RESULTS_DIR, emit, time_best

_DEFAULT_OUTPUT = os.path.join(REPO_ROOT, "BENCH_runtime.json")

BACKENDS = ("serial", "thread", "process", "shm")
#: Pooled backends whose speed-up over serial is reported (fallback
#: rows excluded via the per-row ``effective`` record).
POOLED = ("process", "shm")


def _configs():
    """Many-window splits: ≥ 8 windows each, both partition modes."""
    return [
        ("serial-8w", SplittingConfig(shape=(9, 1, 1), kernel=(2, 1, 1),
                                      mode="serial")),
        ("spatial-16w", SplittingConfig(shape=(5, 5, 1),
                                        kernel=(2, 2, 1))),
    ]


def _check_equal(name, got, want):
    for fld in ("indices", "distances", "counts", "steps", "terminated"):
        if not np.array_equal(getattr(got, fld), getattr(want, fld)):
            raise AssertionError(
                f"{name}: backend result field {fld!r} differs from the "
                f"serial reference")


def _grouping_comparison(repeats, n_points=32768, n_queries=4096,
                         size=32, radius=0.06, seed=5):
    """Bucketed group math vs repeat-padded group math, skewed counts.

    The workload is a dense clump plus a sparse halo, so ball-query hit
    counts range from zero to saturation: repeat-padding inflates every
    row to ``size`` neighbours while the buckets spend flops only on
    real hits.  Both sides start from the same search results (search
    cost is identical by construction); what is timed is the
    per-neighbour distance math — a full ``(Q, size)`` einsum over the
    padded gather vs one einsum per count bucket.  Gated on the
    bucketed ``padded()`` reconstruction being bit-equal to
    ``pad_group_batch``.
    """
    rng = np.random.default_rng(seed)
    clump = rng.normal(scale=0.02, size=(n_points // 2, 3)) + 0.5
    halo = rng.uniform(0.0, 1.0, size=(n_points - n_points // 2, 3))
    positions = np.concatenate([clump, halo])
    queries = positions[rng.choice(n_points, size=n_queries,
                                   replace=False)]
    tree = KDTree(positions)
    result = tree.range_batch(queries, radius, max_results=size)
    indices, counts = result.indices, result.counts
    padded = pad_group_batch(indices, counts, size, queries, positions)
    buckets = bucket_group_batch(indices, counts, size, queries,
                                 positions)
    if not np.array_equal(buckets.padded(), padded):
        raise AssertionError(
            "bucketed grouping diverged from repeat-padding")

    def padded_math():
        diff = positions[padded] - queries[:, None, :]
        return np.einsum("qcd,qcd->qc", diff, diff)

    def bucketed_math():
        return buckets.sq_distances(queries, positions)

    padded_s, padded_sq = time_best(padded_math, repeats)
    bucketed_s, bucketed_sq = time_best(bucketed_math, repeats)
    # The bucketed distances must be the padded distances' real-hit
    # slots, bitwise (same summation order per element).
    for idx, block, sq in zip(buckets.rows, buckets.hits, bucketed_sq):
        width = block.shape[1]
        if not np.array_equal(sq, padded_sq[idx[:, None],
                                            np.arange(width)[None, :]]):
            raise AssertionError(
                "bucketed distances diverged from the padded gather")
    histogram = buckets.histogram
    real_hits = sum(c * b for c, b in histogram.items())
    return {
        "n_points": n_points,
        "n_queries": n_queries,
        "size": size,
        "radius": radius,
        "padded_s": padded_s,
        "bucketed_s": bucketed_s,
        "bucketed_over_padded": padded_s / bucketed_s
        if bucketed_s else 0.0,
        "real_hit_fraction": real_hits / float(n_queries * size),
        "bucket_widths": len(histogram),
        "bucketed_ge_padded": bool(bucketed_s and
                                   padded_s / bucketed_s >= 1.0),
        "equal": True,
    }


def run(n_points=32768, n_queries=4096, k=16, max_steps=48, repeats=3,
        workers=None, output=_DEFAULT_OUTPUT, check=True,
        results_dir=RESULTS_DIR):
    """Run the backend comparison; returns (and writes) the payload."""
    rng = np.random.default_rng(7)
    positions = rng.uniform(0.0, 1.0, size=(n_points, 3))
    queries = positions[rng.choice(n_points, size=n_queries,
                                   replace=False)]
    # Floor the pooled backends at two workers so the thread pool and
    # the forked process pool are genuinely measured even where the CPU
    # count auto-resolves to one (fallback rows are excluded from the
    # headline ratio regardless — see below).
    pool_workers = workers if workers is not None \
        else max(2, resolve_worker_count(None))
    results = []
    for config_name, splitting in _configs():
        reference = {}
        for backend in BACKENDS:
            splitter = CompulsorySplitter(
                positions, splitting, executor=backend,
                executor_workers=None if backend == "serial"
                else pool_workers)
            n_windows = splitter.n_windows
            query_chunks = splitter.chunk_of_queries(queries)
            ops = (
                ("knn", lambda: splitter.knn_batch(
                    queries, k, query_chunks=query_chunks)),
                ("knn_capped", lambda: splitter.knn_batch(
                    queries, k, max_steps=max_steps,
                    query_chunks=query_chunks)),
            )
            for op, fn in ops:
                fn()                       # warm up (fork pool, tables)
                best_s, value = time_best(fn, repeats)
                if backend == "serial":
                    reference[op] = value
                elif check:
                    _check_equal(f"{config_name}/{op}/{backend}", value,
                                 reference[op])
                results.append({
                    "config": config_name,
                    "windows": n_windows,
                    "backend": backend,
                    "effective": splitter.effective_executor,
                    "op": op,
                    "best_s": best_s,
                    "throughput_qps": n_queries / best_s,
                })
            splitter.close()

    def _row(config, backend, op):
        for row in results:
            if (row["config"], row["backend"], row["op"]) == \
                    (config, backend, op):
                return row
        return None

    # Only rows that genuinely exercised the forked pool count toward
    # the headlines — a serial-fallback row compared against serial is
    # timer noise, not a sharding measurement.
    def _pool_ratios(pool_backend):
        ratios = []
        for config_name, _ in _configs():
            for op in ("knn", "knn_capped"):
                serial_row = _row(config_name, "serial", op)
                pool_row = _row(config_name, pool_backend, op)
                serial_tput = serial_row["throughput_qps"] if serial_row \
                    else 0.0
                pool_tput = pool_row["throughput_qps"] if pool_row \
                    else 0.0
                ratios.append({
                    "config": config_name,
                    "op": op,
                    f"{pool_backend}_over_serial":
                        pool_tput / serial_tput if serial_tput else 0.0,
                    f"{pool_backend}_effective": bool(
                        pool_row
                        and pool_row["effective"] == pool_backend),
                })
        effective = [r[f"{pool_backend}_over_serial"] for r in ratios
                     if r[f"{pool_backend}_effective"]]
        best = max(effective) if effective else 0.0
        return ratios, bool(effective), best

    process_ratios, process_exercised, best_process = \
        _pool_ratios("process")
    shm_ratios, shm_exercised, best_shm = _pool_ratios("shm")
    grouping = _grouping_comparison(repeats, n_points=n_points,
                                    n_queries=n_queries,
                                    size=max(4, min(32, 2 * k)))
    payload = {
        "benchmark": "runtime_shards",
        "workload": {"n_points": n_points, "n_queries": n_queries,
                     "k": k, "max_steps": max_steps, "repeats": repeats,
                     "workers": workers, "pool_workers": pool_workers,
                     "cpu_count": os.cpu_count()},
        "results": results,
        "process_over_serial": process_ratios,
        "process_pool_exercised": process_exercised,
        "best_process_over_serial": best_process,
        "process_ge_serial": process_exercised and best_process >= 1.0,
        "shm_over_serial": shm_ratios,
        "shm_pool_exercised": shm_exercised,
        "best_shm_over_serial": best_shm,
        "shm_ge_serial": shm_exercised and best_shm >= 1.0,
        "grouping": grouping,
    }
    if output:
        with open(output, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
    lines = [f"{'config':12s} {'win':>4s} {'backend':8s} {'eff':8s} "
             f"{'op':11s} {'best_s':>9s} {'q/s':>10s}"]
    for row in results:
        lines.append(
            f"{row['config']:12s} {row['windows']:4d} "
            f"{row['backend']:8s} {row['effective']:8s} {row['op']:11s} "
            f"{row['best_s']:9.4f} {row['throughput_qps']:10.0f}")
    lines.append(
        f"best process/serial throughput ratio (effective-process rows "
        f"only): {best_process:.2f}x "
        f"(>=1.0: {payload['process_ge_serial']}; "
        f"pool exercised: {process_exercised})")
    lines.append(
        f"best shm/serial throughput ratio (effective-shm rows only): "
        f"{best_shm:.2f}x (>=1.0: {payload['shm_ge_serial']}; "
        f"pool exercised: {shm_exercised})")
    lines.append(
        f"bucketed/padded grouping speed-up (skewed workload, "
        f"bit-equal): {grouping['bucketed_over_padded']:.2f}x on "
        f"{grouping['real_hit_fraction']:.0%} real-hit density, "
        f"{grouping['bucket_widths']} bucket widths")
    lines.append(
        f"workload: n={n_points}, q={n_queries}, k={k}, "
        f"max_steps={max_steps}, repeats={repeats}, "
        f"pool_workers={pool_workers}, cpus={os.cpu_count()}")
    emit("runtime_shards", lines, results_dir=results_dir)
    if output:
        print(f"wrote {output}")
    return payload


def smoke(tmp_output=None):
    """Tiny configuration exercising the full harness (pytest smoke).

    Smoke timings are timer noise, so the text table is never persisted
    (``results_dir=None``) — only the JSON goes to ``tmp_output``.
    """
    return run(n_points=240, n_queries=36, k=4, max_steps=12, repeats=1,
               output=tmp_output, results_dir=None)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--points", type=int, default=32768)
    parser.add_argument("--queries", type=int, default=4096)
    parser.add_argument("--k", type=int, default=16)
    parser.add_argument("--max-steps", type=int, default=48)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--output", default=_DEFAULT_OUTPUT)
    parser.add_argument("--smoke", action="store_true",
                        help="run the tiny smoke configuration")
    args = parser.parse_args()
    if args.smoke:
        smoke(tmp_output=args.output)
        return
    run(n_points=args.points, n_queries=args.queries, k=args.k,
        max_steps=args.max_steps, repeats=args.repeats,
        workers=args.workers, output=args.output)


if __name__ == "__main__":
    main()
