"""Throughput benchmark: serial vs thread vs process window shards.

Times ``CompulsorySplitter`` batch dispatch on many-window
configurations (a serial-mode 8-window split and a spatial 16-window
split) under the three window-shard runtime backends
(:mod:`repro.runtime`): the inline ``SerialExecutor``, the
``ThreadExecutor`` thread pool, and the ``ProcessShardPool`` that pins
window ids to forked workers with the kd-tree / chunk state shipped
once per worker.  Two operations are measured per backend:

* ``knn`` — uncapped kNN (per-window vectorized scan engine);
* ``knn_capped`` — deadline-capped kNN (per-window lockstep traversal).

Before any timing is trusted, every backend's results are checked
element-for-element against the serial reference (indices, distances,
steps, terminated) — the runtime must be a pure *where-it-runs* change.

Worker counts auto-resolve from the CPU count unless ``--workers`` pins
them; on single-core machines the process pool intentionally falls back
to serial execution (logged), so the recorded "process" rows measure
the fallback path there and real shards on multi-core hosts (the
``effective`` field says which).  Emits ``BENCH_runtime.json`` at the
repo root (override with ``--output``) plus a text table under
``benchmarks/results/``.
"""

from __future__ import annotations

import argparse
import json
import os
import time

import numpy as np

from repro.core.config import SplittingConfig
from repro.core.splitting import CompulsorySplitter

from _common import emit

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_DEFAULT_OUTPUT = os.path.join(_REPO_ROOT, "BENCH_runtime.json")

BACKENDS = ("serial", "thread", "process")


def _configs():
    """Many-window splits: ≥ 8 windows each, both partition modes."""
    return [
        ("serial-8w", SplittingConfig(shape=(9, 1, 1), kernel=(2, 1, 1),
                                      mode="serial")),
        ("spatial-16w", SplittingConfig(shape=(5, 5, 1),
                                        kernel=(2, 2, 1))),
    ]


def _time(fn, repeats):
    best = np.inf
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def _check_equal(name, got, want):
    for fld in ("indices", "distances", "counts", "steps", "terminated"):
        if not np.array_equal(getattr(got, fld), getattr(want, fld)):
            raise AssertionError(
                f"{name}: backend result field {fld!r} differs from the "
                f"serial reference")


def run(n_points=32768, n_queries=4096, k=16, max_steps=48, repeats=3,
        workers=None, output=_DEFAULT_OUTPUT, check=True):
    """Run the backend comparison; returns (and writes) the payload."""
    rng = np.random.default_rng(7)
    positions = rng.uniform(0.0, 1.0, size=(n_points, 3))
    queries = positions[rng.choice(n_points, size=n_queries,
                                   replace=False)]
    results = []
    for config_name, splitting in _configs():
        reference = {}
        for backend in BACKENDS:
            splitter = CompulsorySplitter(positions, splitting,
                                          executor=backend,
                                          executor_workers=workers)
            n_windows = splitter.n_windows
            query_chunks = splitter.chunk_of_queries(queries)
            ops = (
                ("knn", lambda: splitter.knn_batch(
                    queries, k, query_chunks=query_chunks)),
                ("knn_capped", lambda: splitter.knn_batch(
                    queries, k, max_steps=max_steps,
                    query_chunks=query_chunks)),
            )
            for op, fn in ops:
                fn()                       # warm up (fork pool, tables)
                best_s, value = _time(fn, repeats)
                if backend == "serial":
                    reference[op] = value
                elif check:
                    _check_equal(f"{config_name}/{op}/{backend}", value,
                                 reference[op])
                results.append({
                    "config": config_name,
                    "windows": n_windows,
                    "backend": backend,
                    "effective":
                        splitter.index._runtime().executor.effective,
                    "op": op,
                    "best_s": best_s,
                    "throughput_qps": n_queries / best_s,
                })
            splitter.close()

    def _tput(config, backend, op):
        for row in results:
            if (row["config"], row["backend"], row["op"]) == \
                    (config, backend, op):
                return row["throughput_qps"]
        return 0.0

    ratios = []
    for config_name, _ in _configs():
        for op in ("knn", "knn_capped"):
            serial_tput = _tput(config_name, "serial", op)
            process_tput = _tput(config_name, "process", op)
            ratios.append({
                "config": config_name,
                "op": op,
                "process_over_serial": process_tput / serial_tput
                if serial_tput else 0.0,
            })
    best_ratio = max(r["process_over_serial"] for r in ratios)
    payload = {
        "benchmark": "runtime_shards",
        "workload": {"n_points": n_points, "n_queries": n_queries,
                     "k": k, "max_steps": max_steps, "repeats": repeats,
                     "workers": workers},
        "results": results,
        "process_over_serial": ratios,
        "best_process_over_serial": best_ratio,
        "process_ge_serial": best_ratio >= 1.0,
    }
    if output:
        with open(output, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
    lines = [f"{'config':12s} {'win':>4s} {'backend':8s} {'eff':8s} "
             f"{'op':11s} {'best_s':>9s} {'q/s':>10s}"]
    for row in results:
        lines.append(
            f"{row['config']:12s} {row['windows']:4d} "
            f"{row['backend']:8s} {row['effective']:8s} {row['op']:11s} "
            f"{row['best_s']:9.4f} {row['throughput_qps']:10.0f}")
    lines.append(f"best process/serial throughput ratio: "
                 f"{best_ratio:.2f}x (>=1.0: {payload['process_ge_serial']})")
    emit("runtime_shards", lines)
    if output:
        print(f"wrote {output}")
    return payload


def smoke(tmp_output=None):
    """Tiny configuration exercising the full harness (pytest smoke)."""
    return run(n_points=240, n_queries=36, k=4, max_steps=12, repeats=1,
               output=tmp_output)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--points", type=int, default=32768)
    parser.add_argument("--queries", type=int, default=4096)
    parser.add_argument("--k", type=int, default=16)
    parser.add_argument("--max-steps", type=int, default=48)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--output", default=_DEFAULT_OUTPUT)
    parser.add_argument("--smoke", action="store_true",
                        help="run the tiny smoke configuration")
    args = parser.parse_args()
    if args.smoke:
        smoke(tmp_output=args.output)
        return
    run(n_points=args.points, n_queries=args.queries, k=args.k,
        max_steps=args.max_steps, repeats=args.repeats,
        workers=args.workers, output=args.output)


if __name__ == "__main__":
    main()
