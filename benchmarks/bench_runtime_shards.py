"""Throughput benchmark: serial vs thread vs process window shards.

Times ``CompulsorySplitter`` batch dispatch on many-window
configurations (a serial-mode 8-window split and a spatial 16-window
split) under the three window-shard runtime backends
(:mod:`repro.runtime`): the inline ``SerialExecutor``, the
``ThreadExecutor`` thread pool, and the ``ProcessShardPool`` that pins
window ids to forked workers with the kd-tree / chunk state shipped
once per worker.  Two operations are measured per backend:

* ``knn`` — uncapped kNN (per-window vectorized scan engine);
* ``knn_capped`` — deadline-capped kNN (per-window lockstep traversal).

Before any timing is trusted, every backend's results are checked
element-for-element against the serial reference (indices, distances,
steps, terminated) — the runtime must be a pure *where-it-runs* change.

Worker counts auto-resolve from the CPU count unless ``--workers`` pins
them, with a floor of two for the pooled backends so the thread pool
and the forked process pool are genuinely exercised even on single-core
hosts (where shards timeshare one core, so the honest expectation is
≈ 1.0x minus IPC overhead, not a win).  Each row records the
``effective`` backend, and the headline process/serial ratio counts
only rows that actually ran the forked pool — fallback rows can never
masquerade as a sharding measurement.  Emits ``BENCH_runtime.json`` at
the repo root (override with ``--output``) plus a text table under
``benchmarks/results/``.
"""

from __future__ import annotations

import argparse
import json
import os

import numpy as np

from repro.core.config import SplittingConfig
from repro.core.splitting import CompulsorySplitter
from repro.runtime import resolve_worker_count

from _common import REPO_ROOT, RESULTS_DIR, emit, time_best

_DEFAULT_OUTPUT = os.path.join(REPO_ROOT, "BENCH_runtime.json")

BACKENDS = ("serial", "thread", "process")


def _configs():
    """Many-window splits: ≥ 8 windows each, both partition modes."""
    return [
        ("serial-8w", SplittingConfig(shape=(9, 1, 1), kernel=(2, 1, 1),
                                      mode="serial")),
        ("spatial-16w", SplittingConfig(shape=(5, 5, 1),
                                        kernel=(2, 2, 1))),
    ]


def _check_equal(name, got, want):
    for fld in ("indices", "distances", "counts", "steps", "terminated"):
        if not np.array_equal(getattr(got, fld), getattr(want, fld)):
            raise AssertionError(
                f"{name}: backend result field {fld!r} differs from the "
                f"serial reference")


def run(n_points=32768, n_queries=4096, k=16, max_steps=48, repeats=3,
        workers=None, output=_DEFAULT_OUTPUT, check=True,
        results_dir=RESULTS_DIR):
    """Run the backend comparison; returns (and writes) the payload."""
    rng = np.random.default_rng(7)
    positions = rng.uniform(0.0, 1.0, size=(n_points, 3))
    queries = positions[rng.choice(n_points, size=n_queries,
                                   replace=False)]
    # Floor the pooled backends at two workers so the thread pool and
    # the forked process pool are genuinely measured even where the CPU
    # count auto-resolves to one (fallback rows are excluded from the
    # headline ratio regardless — see below).
    pool_workers = workers if workers is not None \
        else max(2, resolve_worker_count(None))
    results = []
    for config_name, splitting in _configs():
        reference = {}
        for backend in BACKENDS:
            splitter = CompulsorySplitter(
                positions, splitting, executor=backend,
                executor_workers=None if backend == "serial"
                else pool_workers)
            n_windows = splitter.n_windows
            query_chunks = splitter.chunk_of_queries(queries)
            ops = (
                ("knn", lambda: splitter.knn_batch(
                    queries, k, query_chunks=query_chunks)),
                ("knn_capped", lambda: splitter.knn_batch(
                    queries, k, max_steps=max_steps,
                    query_chunks=query_chunks)),
            )
            for op, fn in ops:
                fn()                       # warm up (fork pool, tables)
                best_s, value = time_best(fn, repeats)
                if backend == "serial":
                    reference[op] = value
                elif check:
                    _check_equal(f"{config_name}/{op}/{backend}", value,
                                 reference[op])
                results.append({
                    "config": config_name,
                    "windows": n_windows,
                    "backend": backend,
                    "effective": splitter.effective_executor,
                    "op": op,
                    "best_s": best_s,
                    "throughput_qps": n_queries / best_s,
                })
            splitter.close()

    def _row(config, backend, op):
        for row in results:
            if (row["config"], row["backend"], row["op"]) == \
                    (config, backend, op):
                return row
        return None

    # Only rows that genuinely exercised the forked pool count toward
    # the headline — a serial-fallback row compared against serial is
    # timer noise, not a sharding measurement.
    ratios = []
    for config_name, _ in _configs():
        for op in ("knn", "knn_capped"):
            serial_row = _row(config_name, "serial", op)
            process_row = _row(config_name, "process", op)
            serial_tput = serial_row["throughput_qps"] if serial_row \
                else 0.0
            process_tput = process_row["throughput_qps"] if process_row \
                else 0.0
            ratios.append({
                "config": config_name,
                "op": op,
                "process_over_serial": process_tput / serial_tput
                if serial_tput else 0.0,
                "process_effective": bool(
                    process_row
                    and process_row["effective"] == "process"),
            })
    effective_ratios = [r["process_over_serial"] for r in ratios
                        if r["process_effective"]]
    pool_exercised = bool(effective_ratios)
    best_ratio = max(effective_ratios) if pool_exercised else 0.0
    payload = {
        "benchmark": "runtime_shards",
        "workload": {"n_points": n_points, "n_queries": n_queries,
                     "k": k, "max_steps": max_steps, "repeats": repeats,
                     "workers": workers, "pool_workers": pool_workers,
                     "cpu_count": os.cpu_count()},
        "results": results,
        "process_over_serial": ratios,
        "process_pool_exercised": pool_exercised,
        "best_process_over_serial": best_ratio,
        "process_ge_serial": pool_exercised and best_ratio >= 1.0,
    }
    if output:
        with open(output, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
    lines = [f"{'config':12s} {'win':>4s} {'backend':8s} {'eff':8s} "
             f"{'op':11s} {'best_s':>9s} {'q/s':>10s}"]
    for row in results:
        lines.append(
            f"{row['config']:12s} {row['windows']:4d} "
            f"{row['backend']:8s} {row['effective']:8s} {row['op']:11s} "
            f"{row['best_s']:9.4f} {row['throughput_qps']:10.0f}")
    lines.append(
        f"best process/serial throughput ratio (effective-process rows "
        f"only): {best_ratio:.2f}x (>=1.0: {payload['process_ge_serial']}; "
        f"pool exercised: {pool_exercised})")
    lines.append(
        f"workload: n={n_points}, q={n_queries}, k={k}, "
        f"max_steps={max_steps}, repeats={repeats}, "
        f"pool_workers={pool_workers}, cpus={os.cpu_count()}")
    emit("runtime_shards", lines, results_dir=results_dir)
    if output:
        print(f"wrote {output}")
    return payload


def smoke(tmp_output=None):
    """Tiny configuration exercising the full harness (pytest smoke).

    Smoke timings are timer noise, so the text table is never persisted
    (``results_dir=None``) — only the JSON goes to ``tmp_output``.
    """
    return run(n_points=240, n_queries=36, k=4, max_steps=12, repeats=1,
               output=tmp_output, results_dir=None)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--points", type=int, default=32768)
    parser.add_argument("--queries", type=int, default=4096)
    parser.add_argument("--k", type=int, default=16)
    parser.add_argument("--max-steps", type=int, default=48)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--output", default=_DEFAULT_OUTPUT)
    parser.add_argument("--smoke", action="store_true",
                        help="run the tiny smoke configuration")
    args = parser.parse_args()
    if args.smoke:
        smoke(tmp_output=args.output)
        return
    run(n_points=args.points, n_queries=args.queries, k=args.k,
        max_steps=args.max_steps, repeats=args.repeats,
        workers=args.workers, output=args.output)


if __name__ == "__main__":
    main()
