"""Throughput benchmark: cold per-frame rebuilds vs a warm StreamSession.

Streams two multi-frame sequences through StreamGrid, on ≥ 8-window
configurations under all four window-shard runtime backends (including
the zero-copy ``shm`` pool, whose per-row ``state_bytes_shipped`` /
``forks_avoided`` counters make the warm-ingest savings auditable):

* ``serial-8w`` — a **rolling LiDAR stream** (Lisco-style): frames are
  sliding windows over one continuous point stream, advancing by
  exactly one serial chunk per frame, so a warm session reuses both the
  chunk membership and most window kd-trees (each frame's window ``w``
  holds the previous frame's window ``w + 1`` coordinates verbatim);
* ``spatial-16w`` — a **drifting rigid cloud**: every point moves every
  frame, so trees must rebuild and the warm win comes from the pooled
  scheduler lifetime and the drift-gated deadline calibration alone;
* ``partial-9w`` — a **partial-drift scene**: only a rotating fraction
  of chunk cells moves per frame (chunk occupancy held constant), so
  the warm win comes from incremental dirty-window repair (clean
  windows keep their kd-trees and workers) plus the cross-frame result
  cache (clean windows replay their query blocks without traversal).
  Per-frame rebuilt-window counts land in the payload
  (``rebuilt_per_frame``) alongside the cache hit/miss totals.

Each sequence runs two ways:

* **cold** — the status-quo one-shot flow per frame: build a fresh
  :class:`CompulsorySplitter` (grid, membership, window kd-trees,
  executor pool), calibrate a fresh :class:`TerminationPolicy` on the
  frame's full cloud, run the capped windowed kNN batch, tear down;
* **warm** — one :class:`repro.streaming.StreamSession` for the whole
  sequence: the scheduler/pool live across frames, the deadline is
  re-profiled only when the drift statistic fires, and stable chunk
  occupancy reuses the chunk→window tables.

Before any timing is trusted, every backend's warm per-frame results
are checked element-for-element (indices, distances, counts, steps,
terminated) against a cold serial rebuild running at the *same
deadline* — warm state reuse must be a pure when-it-is-built change.
The warm/cold deadlines themselves may differ (that calibration skip
is the point of the session); each row records both backends'
``effective`` executors so fallback rows can never masquerade as a
pooled measurement.  Emits ``BENCH_streaming.json`` at the repo root
(override with ``--output``) plus a text table under
``benchmarks/results/``.
"""

from __future__ import annotations

import argparse
import json
import os

import numpy as np

from repro.core.config import (
    SplittingConfig,
    StreamGridConfig,
    StreamingSessionConfig,
    TerminationConfig,
)
from repro.core.splitting import CompulsorySplitter
from repro.core.termination import TerminationPolicy
from repro.datasets import (
    make_drifting_frames,
    make_lidar_stream_frames,
    make_partial_drift_frames,
)
from repro.runtime import resolve_worker_count
from repro.streaming import StreamSession

from _common import REPO_ROOT, RESULTS_DIR, emit, time_best

_DEFAULT_OUTPUT = os.path.join(REPO_ROOT, "BENCH_streaming.json")

BACKENDS = ("serial", "thread", "process", "shm")


def _rolling_frames(n_frames, n_points, seed=7):
    """Sliding windows over one LiDAR stream, advancing one chunk/frame.

    ``n_points`` is rounded down to a multiple of the 9 serial chunks so
    the advance is exactly one chunk — the tree-rotation reuse case.
    """
    n_chunks = 9
    rolled = max(n_chunks, (n_points // n_chunks) * n_chunks)
    frames = make_lidar_stream_frames(
        n_frames=n_frames, n_points=rolled, advance=rolled // n_chunks,
        seed=seed)
    return [frame.positions for frame in frames]


def _drifting_frames(n_frames, n_points, seed=7):
    """A drifting rigid cloud: constant size, every coordinate moves."""
    frames = make_drifting_frames("two_spheres", n_frames, n_points,
                                  seed=seed, drift=(0.02, 0.01, 0.0),
                                  spin=0.01, jitter=0.005)
    return [frame.positions for frame in frames]


def _partial_frames(n_frames, n_points, seed=7):
    """Partial drift: one eighth of the chunk cells move per frame."""
    frames = make_partial_drift_frames(
        "two_spheres", n_frames, n_points, shape=(4, 4, 1),
        fraction=0.125, seed=seed, jitter=0.01)
    return [frame.positions for frame in frames]


def _configs():
    """Many-window workloads: ≥ 8 windows each, both partition modes."""
    return [
        ("serial-8w", SplittingConfig(shape=(9, 1, 1), kernel=(2, 1, 1),
                                      mode="serial"), _rolling_frames),
        ("spatial-16w", SplittingConfig(shape=(5, 5, 1),
                                        kernel=(2, 2, 1)),
         _drifting_frames),
        ("partial-9w", SplittingConfig(shape=(4, 4, 1),
                                       kernel=(2, 2, 1)),
         _partial_frames),
    ]


def _frame_queries(frames, n_queries, seed=11):
    """One fixed query-row sample, applied to every frame's cloud."""
    rng = np.random.default_rng(seed)
    rows = rng.choice(len(frames[0]), size=min(n_queries, len(frames[0])),
                      replace=False)
    return [frame[rows] for frame in frames]


def _run_cold(frames, queries, splitting, k, backend, pool_workers):
    """The status-quo per-frame flow; returns (results, deadlines, eff)."""
    results, deadlines, effective = [], [], None
    for positions, query_block in zip(frames, queries):
        splitter = CompulsorySplitter(
            positions, splitting, executor=backend,
            executor_workers=None if backend == "serial" else pool_workers)
        policy = TerminationPolicy(TerminationConfig())
        policy.calibrate(positions, k)
        results.append(splitter.knn_batch(
            query_block, k, max_steps=policy.deadline))
        deadlines.append(policy.deadline)
        effective = splitter.effective_executor
        splitter.close()
    return results, deadlines, effective


def _run_warm(frames, queries, splitting, k, backend, pool_workers):
    """One session for the whole sequence; returns (frames, stats, eff)."""
    config = StreamGridConfig(
        splitting=splitting, executor=backend,
        executor_workers=None if backend == "serial" else pool_workers)
    with StreamSession(config, k=k) as session:
        outcomes = session.run(frames, queries=queries)
        return outcomes, session.stats, session.effective_executor


def _reference_at_deadlines(frames, queries, splitting, k, deadlines):
    """Cold serial rebuilds pinned to the warm session's deadlines."""
    results = []
    for positions, query_block, deadline in zip(frames, queries,
                                                deadlines):
        splitter = CompulsorySplitter(positions, splitting)
        results.append(splitter.knn_batch(query_block, k,
                                          max_steps=deadline))
        splitter.close()
    return results


def _check_equal(name, got, want):
    for fld in ("indices", "distances", "counts", "steps", "terminated"):
        if not np.array_equal(getattr(got, fld), getattr(want, fld)):
            raise AssertionError(
                f"{name}: warm-session result field {fld!r} differs from "
                f"the cold rebuild at the same deadline")


def run(n_points=8192, n_queries=512, k=16, n_frames=5, repeats=3,
        workers=None, output=_DEFAULT_OUTPUT, check=True,
        results_dir=RESULTS_DIR):
    """Run the warm-vs-cold comparison; returns (and writes) the payload."""
    pool_workers = workers if workers is not None \
        else max(2, resolve_worker_count(None))
    results = []
    for config_name, splitting, make_frames in _configs():
        frames = make_frames(n_frames, n_points)
        queries = _frame_queries(frames, n_queries)
        reference = None
        reference_deadlines = None
        for backend in BACKENDS:
            warm_s, (warm_frames, stats, warm_eff) = time_best(
                lambda: _run_warm(frames, queries, splitting, k, backend,
                                  pool_workers), repeats)
            cold_s, (_, _, cold_eff) = time_best(
                lambda: _run_cold(frames, queries, splitting, k, backend,
                                  pool_workers), repeats)
            deadlines = [frame.deadline for frame in warm_frames]
            if check:
                if reference is None:
                    reference = _reference_at_deadlines(
                        frames, queries, splitting, k, deadlines)
                    reference_deadlines = deadlines
                # Deadlines are deterministic: every backend must agree.
                assert deadlines == reference_deadlines, (
                    f"{config_name}/{backend}: warm deadlines diverged "
                    "across backends")
                for i, (got, want) in enumerate(zip(warm_frames,
                                                    reference)):
                    _check_equal(f"{config_name}/{backend}/frame{i}",
                                 got.result, want)
            n_windows = warm_frames[0].n_windows
            results.append({
                "config": config_name,
                "windows": n_windows,
                "backend": backend,
                "warm_effective": warm_eff,
                "cold_effective": cold_eff,
                "cold_s": cold_s,
                "warm_s": warm_s,
                "cold_fps": n_frames / cold_s,
                "warm_fps": n_frames / warm_s,
                "warm_over_cold": cold_s / warm_s,
                "calibrations": stats.calibrations,
                "drift_checks": stats.drift_checks,
                "index_fast_path_frames": stats.index_fast_path_frames,
                "trees_reused": stats.trees_reused,
                "windows_clean": stats.windows_clean,
                "windows_rebuilt": stats.windows_rebuilt,
                "rebuilt_per_frame": [frame.rebuilt_windows
                                      for frame in warm_frames],
                "cache_hits": stats.cache_hits,
                "cache_misses": stats.cache_misses,
                # Zero-copy accounting (non-zero only on the shm pool):
                # cumulative bytes staged into shared segments, worker
                # re-forks avoided by segment attach, and the live
                # segment count at stream end.  ``bytes_per_frame``
                # exposes the warm-ingest profile — on stable content
                # later frames ship only dirty windows (zero when
                # nothing moved).
                "state_bytes_shipped": stats.state_bytes_shipped,
                "forks_avoided": stats.forks_avoided,
                "segments_live": stats.segments_live,
                "overlap_windows": stats.overlap_windows,
                "queue_fallback_units": stats.queue_fallback_units,
                "bytes_per_frame": [
                    frame.runtime.get("state_bytes_shipped", 0)
                    for frame in warm_frames],
            })
    best_ratio = max(row["warm_over_cold"] for row in results)
    best_partial = max((row["warm_over_cold"] for row in results
                        if row["config"] == "partial-9w"), default=0.0)
    best_drifting = max((row["warm_over_cold"] for row in results
                         if row["config"] == "spatial-16w"), default=0.0)
    payload = {
        "benchmark": "streaming_session",
        "workload": {"n_points": n_points, "n_queries": n_queries,
                     "k": k, "n_frames": n_frames, "repeats": repeats,
                     "workers": workers, "pool_workers": pool_workers,
                     "cpu_count": os.cpu_count()},
        "results": results,
        "best_warm_over_cold": best_ratio,
        "warm_ge_2x": best_ratio >= 2.0,
        # Incremental repair + result caching must beat the
        # all-windows-rebuilt drifting baseline (pool + calibration
        # reuse alone).
        "best_partial_warm_over_cold": best_partial,
        "best_drifting_warm_over_cold": best_drifting,
        "partial_beats_drifting": best_partial > best_drifting,
        # The zero-copy acceptance signals: on the rolling stream an
        # effective shm session must avoid re-forking warm workers
        # (state reaches them by segment attach — zero bytes pickled per
        # worker), and on the partial-drift stream warm frames must ship
        # strictly less state than the cold first frame because only
        # dirty windows are re-exported (the rolling stream rotates
        # content through *every* window per frame, so full re-export is
        # the honest expectation there).
        "shm_rows_effective": any(
            row["backend"] == "shm" and row["warm_effective"] == "shm"
            for row in results),
        "shm_forks_avoided_on_rolling": any(
            row["backend"] == "shm" and row["config"] == "serial-8w"
            and row["warm_effective"] == "shm"
            and row["forks_avoided"] > 0 for row in results),
        "shm_warm_frames_ship_less": all(
            max(row["bytes_per_frame"][1:], default=0)
            < row["bytes_per_frame"][0]
            for row in results
            if row["backend"] == "shm" and row["warm_effective"] == "shm"
            and row["config"] == "partial-9w"
            and len(row["bytes_per_frame"]) > 1),
    }
    if output:
        with open(output, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
    lines = [f"{'config':12s} {'win':>4s} {'backend':8s} {'eff(w/c)':14s} "
             f"{'cold_fps':>9s} {'warm_fps':>9s} {'warm/cold':>10s} "
             f"{'recal':>6s} {'fast':>5s} {'trees':>6s} {'clean':>6s} "
             f"{'hits':>6s}"]
    for row in results:
        eff = f"{row['warm_effective']}/{row['cold_effective']}"
        lines.append(
            f"{row['config']:12s} {row['windows']:4d} "
            f"{row['backend']:8s} {eff:14s} "
            f"{row['cold_fps']:9.2f} {row['warm_fps']:9.2f} "
            f"{row['warm_over_cold']:9.2f}x "
            f"{row['calibrations']:6d} {row['index_fast_path_frames']:5d} "
            f"{row['trees_reused']:6d} {row['windows_clean']:6d} "
            f"{row['cache_hits']:6d}")
    lines.append(
        f"best warm/cold frames-per-second ratio: {best_ratio:.2f}x "
        f"(>=2.0: {payload['warm_ge_2x']})")
    lines.append(
        f"partial-drift best {best_partial:.2f}x vs all-rebuilt drifting "
        f"best {best_drifting:.2f}x (incremental repair wins: "
        f"{payload['partial_beats_drifting']})")
    shm_rows = [row for row in results if row["backend"] == "shm"
                and row["warm_effective"] == "shm"]
    for row in shm_rows:
        lines.append(
            f"shm {row['config']}: shipped={row['state_bytes_shipped']}B "
            f"({row['bytes_per_frame']}), "
            f"forks_avoided={row['forks_avoided']}, "
            f"segments_live={row['segments_live']}, "
            f"overlap_windows={row['overlap_windows']}")
    lines.append(
        f"shm zero-copy: rolling forks avoided "
        f"{payload['shm_forks_avoided_on_rolling']}, partial-drift warm "
        f"frames ship only dirty windows "
        f"{payload['shm_warm_frames_ship_less']}")
    lines.append(
        f"workload: n={n_points}, q={n_queries}, k={k}, "
        f"frames={n_frames}, repeats={repeats}, "
        f"pool_workers={pool_workers}, cpus={os.cpu_count()}")
    emit("streaming_session", lines, results_dir=results_dir)
    if output:
        print(f"wrote {output}")
    return payload


def smoke(tmp_output=None):
    """Tiny configuration exercising the full harness (pytest smoke).

    Smoke timings are timer noise, so the text table is never persisted
    (``results_dir=None``) — only the JSON goes to ``tmp_output``.
    """
    return run(n_points=300, n_queries=40, k=4, n_frames=3, repeats=1,
               output=tmp_output, results_dir=None)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--points", type=int, default=8192)
    parser.add_argument("--queries", type=int, default=512)
    parser.add_argument("--k", type=int, default=16)
    parser.add_argument("--frames", type=int, default=5)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--output", default=_DEFAULT_OUTPUT)
    parser.add_argument("--smoke", action="store_true",
                        help="run the tiny smoke configuration")
    args = parser.parse_args()
    if args.smoke:
        smoke(tmp_output=args.output)
        return
    run(n_points=args.points, n_queries=args.queries, k=args.k,
        n_frames=args.frames, repeats=args.repeats,
        workers=args.workers, output=args.output)


if __name__ == "__main__":
    main()
