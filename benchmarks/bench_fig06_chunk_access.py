"""Fig. 6: accessed chunks vs. requested neighbours (8x8 chunk grid).

The paper partitions a KITTI cloud into 8x8 chunks and reports that even
256-neighbour queries touch on average only ~16 chunks.  We run the same
measurement on a simulated LiDAR cloud: exact kd-tree kNN with traversal
tracing, counting the distinct chunks owning the visited nodes.
"""

import numpy as np

from repro.core import count_accessed_chunks
from repro.datasets import make_lidar_cloud

from _common import emit

NEIGHBOR_COUNTS = (1, 4, 16, 64, 256)


def _sweep(pts, queries):
    return {k: float(count_accessed_chunks(pts, queries, k,
                                           (8, 8, 1)).mean())
            for k in NEIGHBOR_COUNTS}


def test_bench_chunk_access(benchmark):
    cloud = make_lidar_cloud(n_points=2048, seed=0)
    pts = cloud.positions
    rng = np.random.default_rng(0)
    queries = pts[rng.choice(len(pts), size=48, replace=False)]

    means = benchmark(_sweep, pts, queries)

    lines = ["requested_neighbors  mean_accessed_chunks (of 64)"]
    for k in NEIGHBOR_COUNTS:
        lines.append(f"{k:>19d}  {means[k]:.1f}")
    lines.append("paper shape: rises with k but stays far below 64 "
                 "(~16 chunks at k=256)")
    emit("fig06_chunk_access", lines)

    assert means[256] > means[1]
    assert means[256] < 48          # well below the 64 available chunks
