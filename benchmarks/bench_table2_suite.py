"""Tbl. 2: the benchmark suite — four domains, their pipelines, and the
global-dependent operation each one carries.

This bench builds every pipeline (measuring its workload on the real
substrates) and regenerates the table, plus the ILP/constraint-pruning
statistics (Sec. 5.2: the pruned formulation replaces the >100K dense
constraints with a handful per edge).
"""

from repro.optimizer import (
    build_problem,
    count_dense_constraints,
    count_pruned_constraints,
    optimize_buffers,
)
from repro.pipelines import build_pipeline

from _common import emit

PIPELINES = (
    ("classification", {"n_points": 1024}, "Range Search"),
    ("segmentation", {"n_points": 1024}, "Range Search"),
    ("registration", {"n_scan_points": 2048}, "kNN Search"),
    ("rendering", {"n_gaussians": 8192}, "Sorting"),
)


def _build_all():
    return {name: build_pipeline(name, **kwargs)
            for name, kwargs, _ in PIPELINES}


def test_bench_table2(benchmark):
    specs = benchmark.pedantic(_build_all, rounds=1, iterations=1)

    lines = ["pipeline        global_op     n_points  windows  "
             "dense_constraints  pruned  ilp_buffer[KiB]"]
    for name, _, global_op_name in PIPELINES:
        spec = specs[name]
        inst = spec.graph.instantiate(spec.workload.window_points)
        problem = build_problem(inst)
        schedule = optimize_buffers(inst)
        lines.append(
            f"{name:14s}  {global_op_name:12s}  "
            f"{spec.workload.n_points:>8d}  "
            f"{spec.workload.n_windows:>7d}  "
            f"{count_dense_constraints(inst):>17d}  "
            f"{count_pruned_constraints(problem):>6d}  "
            f"{schedule.total_buffer_bytes / 1024:>15.1f}")
    emit("table2_suite", lines)

    for name, _, _ in PIPELINES:
        spec = specs[name]
        inst = spec.graph.instantiate(spec.workload.window_points)
        problem = build_problem(inst)
        assert (count_pruned_constraints(problem)
                < count_dense_constraints(inst))
