"""Fig. 19: sensitivity of accuracy and energy to the chunk count.

The paper sweeps the number of split chunks for classification and
segmentation: energy falls as chunks shrink the buffers, while accuracy
degrades task-specifically (classification is robust, segmentation drops
at 16 chunks).  We co-train at each chunk count and evaluate energy via
the streaming-design model at matching window counts.
"""

import numpy as np

from repro.core import StreamGridConfig, TerminationConfig
from repro.core.splitting import splitting_for_chunks
from repro.datasets import make_modelnet, make_shapenet
from repro.nn import (
    ClassifierSpec,
    SALevelSpec,
    SegmenterSpec,
    evaluate_classifier,
    evaluate_segmenter,
    train_classifier,
    train_segmenter,
)
from repro.pipelines import build_pipeline
from repro.sim.variants import evaluate_streaming_design

from _common import emit

CHUNK_COUNTS = (4, 8, 16)


def _config(n_chunks: int) -> StreamGridConfig:
    return StreamGridConfig(
        splitting=splitting_for_chunks(n_chunks, kernel_width=2),
        termination=TerminationConfig(profile_queries=8),
        use_splitting=True, use_termination=True)


def _accuracy_sweep():
    cls_ds = make_modelnet(8, n_points=96,
                           class_names=("sphere", "box", "plane", "cross"),
                           seed=0)
    cls_train, cls_test = cls_ds.split(0.6, np.random.default_rng(1))
    seg_ds = make_shapenet(3, n_points=128, seed=0)
    seg_train, seg_test = seg_ds.split(0.67, np.random.default_rng(1))
    cls_spec = ClassifierSpec(sa1=SALevelSpec(24, 0.45, 12),
                              sa2=SALevelSpec(8, 0.9, 6))
    seg_spec = SegmenterSpec(sa1=SALevelSpec(24, 0.35, 8),
                             sa2=SALevelSpec(6, 0.7, 4))
    accuracy = {}
    for n in CHUNK_COUNTS:
        config = _config(n)
        cls_run = train_classifier(cls_train, config, epochs=15,
                                   lr=0.003, seed=0, spec=cls_spec)
        seg_run = train_segmenter(seg_train, config, epochs=15,
                                  lr=0.01, seed=0, spec=seg_spec)
        accuracy[n] = {
            "classification": evaluate_classifier(cls_run, cls_test),
            "segmentation": evaluate_segmenter(seg_run, seg_test),
        }
    return accuracy


def _energy_sweep():
    energy = {}
    for n in CHUNK_COUNTS:
        config = _config(n)
        spec = build_pipeline("classification", n_points=1024,
                              splitting=config.splitting)
        report = evaluate_streaming_design("CS+DT", spec.graph,
                                           spec.workload)
        energy[n] = {"energy_uj": report.energy.total_uj,
                     "buffer_kib": report.buffer_bytes / 1024}
    return energy


def test_bench_fig19(benchmark):
    accuracy = benchmark.pedantic(_accuracy_sweep, rounds=1, iterations=1)
    energy = _energy_sweep()

    base_energy = energy[CHUNK_COUNTS[0]]["energy_uj"]
    lines = ["n_chunks  acc_cls  acc_seg  energy_norm  buffer[KiB]"]
    for n in CHUNK_COUNTS:
        lines.append(
            f"{n:>8d}  {accuracy[n]['classification']:.3f}    "
            f"{accuracy[n]['segmentation']:.3f}    "
            f"{energy[n]['energy_uj'] / base_energy:>10.3f}  "
            f"{energy[n]['buffer_kib']:>10.1f}")
    lines.append("paper shape: energy (normalised to 4 chunks) falls with "
                 "more chunks; accuracy sensitivity is task-specific")
    emit("fig19_splitting_sensitivity", lines)

    # Buffers must shrink monotonically with more chunks.
    buffers = [energy[n]["buffer_kib"] for n in CHUNK_COUNTS]
    assert buffers[-1] < buffers[0]
    # Energy at 16 chunks below energy at 4 chunks.
    assert energy[16]["energy_uj"] < energy[4]["energy_uj"]
