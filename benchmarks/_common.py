"""Shared helpers for the figure/table benchmarks.

Each benchmark regenerates one paper artifact: it computes the same rows
or series the paper reports, prints them, and persists them under
``benchmarks/results/`` so EXPERIMENTS.md can quote measured numbers.
"""

from __future__ import annotations

import os
import time
from typing import Iterable, Optional

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def time_best(fn, repeats: int):
    """Best-of-N wall time for ``fn()``: returns ``(best_s, value)``.

    Timing on shared boxes is noisy, so every benchmark takes the
    minimum over *repeats* calls rather than a single measurement.
    """
    best = float("inf")
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def emit(name: str, lines: Iterable[str],
         results_dir: Optional[str] = RESULTS_DIR) -> Optional[str]:
    """Print a result table; persist it under ``results_dir``.

    ``results_dir`` defaults to the tracked ``benchmarks/results/``
    directory and is only appropriate for full-workload runs.  Smoke /
    test invocations must pass ``results_dir=None`` (print only) or a
    temporary directory so they can never overwrite tracked results.
    """
    text = "\n".join(lines)
    banner = f"===== {name} ====="
    print(f"\n{banner}\n{text}")
    if results_dir is None:
        return None
    os.makedirs(results_dir, exist_ok=True)
    path = os.path.join(results_dir, f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(text + "\n")
    return path
