"""Shared helpers for the figure/table benchmarks.

Each benchmark regenerates one paper artifact: it computes the same rows
or series the paper reports, prints them, and persists them under
``benchmarks/results/`` so EXPERIMENTS.md can quote measured numbers.
"""

from __future__ import annotations

import os
from typing import Iterable

_RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit(name: str, lines: Iterable[str]) -> str:
    """Print a result table and persist it to benchmarks/results/."""
    os.makedirs(_RESULTS_DIR, exist_ok=True)
    text = "\n".join(lines)
    banner = f"===== {name} ====="
    print(f"\n{banner}\n{text}")
    path = os.path.join(_RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(text + "\n")
    return path
