"""Fig. 17: on-chip buffer reduction (a) and normalised energy (b).

The paper compares line-buffered designs with and without the two
techniques at the same throughput: CS and CS+DT shrink buffers by 72% on
average (3DGS's Base is infeasible — >1 GB), and energy falls ~40.5% with
the savings attributed to the smaller SRAM (plus the search work DT
trims).  We evaluate the same three designs on all four pipelines.
"""

from repro.pipelines import build_pipeline
from repro.sim.variants import evaluate_streaming_design

from _common import emit

PIPELINES = (
    ("classification", {"n_points": 1024}),
    ("segmentation", {"n_points": 1024}),
    ("registration", {"n_scan_points": 4096}),
    ("rendering", {"n_gaussians": 16384}),
)
VARIANTS = ("Base", "CS", "CS+DT")


def _run():
    results = {}
    for name, kwargs in PIPELINES:
        spec = build_pipeline(name, **kwargs)
        results[name] = {
            v: evaluate_streaming_design(v, spec.graph, spec.workload)
            for v in VARIANTS
        }
    return results


def test_bench_fig17(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)

    lines = ["pipeline        variant  buffer[KiB]  reduction  "
             "energy[uJ]  saving"]
    reductions, savings = [], []
    for name, reports in results.items():
        base = reports["Base"]
        for v in VARIANTS:
            r = reports[v]
            red = 1 - r.buffer_bytes / base.buffer_bytes
            sav = 1 - r.energy_pj / base.energy_pj
            if v == "CS+DT":
                reductions.append(red)
                savings.append(sav)
            lines.append(
                f"{name:14s}  {v:6s}  {r.buffer_bytes / 1024:>10.1f}  "
                f"{red:>8.1%}  {r.energy.total_uj:>10.1f}  {sav:>6.1%}")
    mean_red = sum(reductions) / len(reductions)
    mean_sav = sum(savings) / len(savings)
    lines.append(f"CS+DT mean buffer reduction: {mean_red:.1%} "
                 "(paper: 72% mean, 61.3% headline)")
    lines.append(f"CS+DT mean energy saving:    {mean_sav:.1%} "
                 "(paper: 40.5%)")
    emit("fig17_buffer_energy", lines)

    assert mean_red > 0.4
    assert mean_sav > 0.1
    for reports in results.values():
        assert (reports["CS+DT"].buffer_bytes
                <= reports["CS"].buffer_bytes
                <= reports["Base"].buffer_bytes)
