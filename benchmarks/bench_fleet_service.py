"""Multi-tenant fleet benchmark: one shared worker set vs N private pools.

Drives N concurrent :class:`repro.streaming.StreamSession` tenants
(N ∈ {2, 8} by default) through drifting-cloud frame streams two ways:

* **dedicated** — the status quo: every tenant constructs its own
  process pool (``executor="process"``), so N tenants hold N × workers
  forked processes between them;
* **fleet** — every tenant leases the same
  :class:`repro.runtime.fleet.ShardFleet` (shared-memory inner
  transport): one supervised worker set serves all tenants, window ids
  namespaced per session, cross-tenant dispatch EDF-ordered by each
  tenant's pinned deadline, and the process-global result cache shared
  (``cache_scope="auto"``).

Both sides run the *same* single-threaded round-robin driver (tenant 0
frame 0, tenant 1 frame 0, …, tenant 0 frame 1, …) so the comparison
isolates the execution substrate: aggregate frames-per-second across
tenants plus the p50/p99 per-frame latency over every (tenant, frame)
pair.  Two scenarios per tenant count:

* ``distinct-scenes`` — every tenant streams its own scene (different
  seeds): the general case, no cache sharing possible;
* ``shared-scene`` — every tenant streams the *same* scene (N clients
  analysing one sensor feed): tenants 2..N replay tenant 1's cached
  window results bit-exactly, the multi-tenant cache win.

Before any timing is trusted, every tenant's fleet results are checked
element-for-element against its dedicated-pool results *and* a serial
reference at the same pinned per-tenant deadline — multi-tenancy must
be a pure where-it-runs change.  Every row records the per-tenant
``effective`` executors (fleet rows must report ``fleet:shm``; a
fallback can never masquerade as a fleet measurement) and the
per-tenant attribution counters: cache hits/misses, recovery work
(retries / respawns — all zero on a clean run), and shared-memory bytes
shipped.  Emits ``BENCH_fleet.json`` at the repo root (override with
``--output``) plus a text table under ``benchmarks/results/``.
"""

from __future__ import annotations

import argparse
import json
import os
import time

import numpy as np

from repro.core.config import (
    SplittingConfig,
    StreamGridConfig,
    TerminationConfig,
)
from repro.datasets import make_drifting_frames
from repro.runtime import resolve_worker_count
from repro.runtime.fleet import FleetConfig, ShardFleet
from repro.spatial.neighbors import reset_shared_result_cache
from repro.streaming import StreamSession

from _common import REPO_ROOT, RESULTS_DIR, emit

_DEFAULT_OUTPUT = os.path.join(REPO_ROOT, "BENCH_fleet.json")

SPLITTING = SplittingConfig(shape=(3, 3, 1), kernel=(2, 2, 1))
SCENARIOS = ("distinct-scenes", "shared-scene")
#: Pinned per-tenant deadlines cycle through this ladder so concurrent
#: tenants genuinely differ in urgency — the EDF scheduler's input.
#: Shared-scene tenants all pin the ladder's first deadline instead:
#: cached window results replay bit-exactly only at identical search
#: parameters, and N replica clients of one feed share one SLA anyway.
_DEADLINE_LADDER = (48, 56, 64, 72)


def _tenant_deadline(tenant: int, scenario: str) -> int:
    if scenario == "shared-scene":
        return _DEADLINE_LADDER[0]
    return _DEADLINE_LADDER[tenant % len(_DEADLINE_LADDER)]


def _tenant_streams(n_sessions, n_frames, n_points, scenario, seed=7):
    """Per-tenant frame lists (identical across tenants when shared)."""
    streams = []
    for tenant in range(n_sessions):
        tenant_seed = seed if scenario == "shared-scene" \
            else seed + 13 * tenant
        frames = make_drifting_frames(
            "two_spheres", n_frames, n_points, seed=tenant_seed,
            drift=(0.02, 0.01, 0.0), spin=0.01, jitter=0.005)
        streams.append([frame.positions for frame in frames])
    return streams


def _tenant_queries(streams, n_queries, scenario, seed=11):
    """One fixed query-row sample per tenant, applied to every frame.

    Shared-scene tenants issue *identical* queries (N replica clients
    of one feed): only then can tenants 2..N replay tenant 1's cached
    window results.  Distinct-scene tenants each draw their own rows.
    """
    rng = np.random.default_rng(seed)
    queries = []
    shared_rows = None
    for frames in streams:
        if scenario == "shared-scene" and shared_rows is not None:
            rows = shared_rows
        else:
            rows = rng.choice(len(frames[0]),
                              size=min(n_queries, len(frames[0])),
                              replace=False)
            if scenario == "shared-scene":
                shared_rows = rows
        queries.append([frame[rows] for frame in frames])
    return queries


def _config(executor, tenant, scenario, workers) -> StreamGridConfig:
    return StreamGridConfig(
        splitting=SPLITTING,
        termination=TerminationConfig(
            deadline_steps=_tenant_deadline(tenant, scenario)),
        executor=executor,
        executor_workers=workers)


def _drive(streams, queries, k, executor_for, scenario, workers):
    """Round-robin all tenants' frames through fresh sessions.

    Returns per-tenant frame results, every (tenant, frame) wall time,
    each session's stats, and each session's effective executor.
    """
    n_sessions = len(streams)
    sessions = [StreamSession(_config(executor_for(i), i, scenario,
                                      workers), k=k)
                for i in range(n_sessions)]
    results = [[] for _ in range(n_sessions)]
    latencies = []
    try:
        start_all = time.perf_counter()
        for frame_idx in range(len(streams[0])):
            for tenant, session in enumerate(sessions):
                start = time.perf_counter()
                results[tenant].append(session.process(
                    streams[tenant][frame_idx],
                    queries[tenant][frame_idx]))
                latencies.append(time.perf_counter() - start)
        elapsed = time.perf_counter() - start_all
        stats = [session.stats for session in sessions]
        effective = [session.effective_executor for session in sessions]
    finally:
        for session in sessions:
            session.close()
    return results, latencies, elapsed, stats, effective


def _check_equal(name, got, want):
    for fld in ("indices", "distances", "counts", "steps", "terminated"):
        if not np.array_equal(getattr(got.result, fld),
                              getattr(want.result, fld)):
            raise AssertionError(
                f"{name}: fleet result field {fld!r} differs from the "
                f"dedicated-pool reference at the same deadline")


def _shm_leftovers():
    try:
        return sorted(name for name in os.listdir("/dev/shm")
                      if name.startswith("repro-"))
    except FileNotFoundError:
        return []


def run(n_points=4096, n_queries=256, k=8, n_frames=6,
        tenant_counts=(2, 8), repeats=2, workers=None,
        output=_DEFAULT_OUTPUT, check=True, results_dir=RESULTS_DIR):
    """Run the fleet-vs-dedicated comparison; returns the payload."""
    pool_workers = workers if workers is not None \
        else max(2, resolve_worker_count(None))
    results = []
    for n_sessions in tenant_counts:
        for scenario in SCENARIOS:
            streams = _tenant_streams(n_sessions, n_frames, n_points,
                                      scenario)
            queries = _tenant_queries(streams, n_queries, scenario)
            total_frames = n_sessions * n_frames

            def _dedicated():
                return _drive(streams, queries, k,
                              lambda i: "process", scenario,
                              pool_workers)

            def _fleet():
                # Cold shared cache every repeat: timings must never
                # replay an earlier repeat's entries.
                reset_shared_result_cache()
                fleet = ShardFleet(FleetConfig(backend="shm",
                                               n_workers=pool_workers))
                try:
                    outcome = _drive(streams, queries, k,
                                     lambda i: fleet, scenario, None)
                    return outcome + (fleet.stats(),)
                finally:
                    fleet.shutdown()

            ded_best = fleet_best = None
            for _ in range(repeats):
                ded = _dedicated()
                if ded_best is None or ded[2] < ded_best[2]:
                    ded_best = ded
                flt = _fleet()
                if fleet_best is None or flt[2] < fleet_best[2]:
                    fleet_best = flt
            (ded_results, ded_lat, ded_s, ded_stats,
             ded_eff) = ded_best
            (fleet_results, fleet_lat, fleet_s, fleet_stats,
             fleet_eff, fleet_summary) = fleet_best

            if check:
                serial_results, _, _, _, _ = _drive(
                    streams, queries, k, lambda i: "serial", scenario,
                    None)
                for tenant in range(n_sessions):
                    for idx in range(n_frames):
                        tag = (f"{scenario}/n{n_sessions}/t{tenant}/"
                               f"frame{idx}")
                        _check_equal(tag, fleet_results[tenant][idx],
                                     ded_results[tenant][idx])
                        _check_equal(tag, fleet_results[tenant][idx],
                                     serial_results[tenant][idx])

            row = {
                "scenario": scenario,
                "sessions": n_sessions,
                "frames_per_session": n_frames,
                "deadlines": [_tenant_deadline(i, scenario)
                              for i in range(n_sessions)],
                "dedicated_effective": ded_eff,
                "fleet_effective": fleet_eff,
                "dedicated_s": ded_s,
                "fleet_s": fleet_s,
                "dedicated_fps": total_frames / ded_s,
                "fleet_fps": total_frames / fleet_s,
                "fleet_over_dedicated": ded_s / fleet_s,
                "dedicated_p50_ms": float(
                    np.percentile(ded_lat, 50) * 1e3),
                "dedicated_p99_ms": float(
                    np.percentile(ded_lat, 99) * 1e3),
                "fleet_p50_ms": float(
                    np.percentile(fleet_lat, 50) * 1e3),
                "fleet_p99_ms": float(
                    np.percentile(fleet_lat, 99) * 1e3),
                "fleet_dispatches": fleet_summary["dispatches"],
                "fleet_shed": fleet_summary["shed"],
                # Per-tenant attribution: every counter below is the
                # tenant's own (lease-level fault stats, index-level
                # cache lookups) — not a fleet-wide aggregate.
                "tenants": [{
                    "tenant": i,
                    "deadline": _tenant_deadline(i, scenario),
                    "cache_hits": fleet_stats[i].cache_hits,
                    "cache_misses": fleet_stats[i].cache_misses,
                    "retries": fleet_stats[i].retries,
                    "respawns": fleet_stats[i].respawns,
                    "timeouts": fleet_stats[i].timeouts,
                    "state_bytes_shipped":
                        fleet_stats[i].state_bytes_shipped,
                } for i in range(n_sessions)],
            }
            results.append(row)
    fleet_effective_ok = all(
        eff == "fleet:shm"
        for row in results for eff in row["fleet_effective"])
    largest = max(tenant_counts)
    largest_distinct = next(
        row for row in results
        if row["sessions"] == largest
        and row["scenario"] == "distinct-scenes")
    shared_rows = [row for row in results
                   if row["scenario"] == "shared-scene"]
    payload = {
        "benchmark": "fleet_service",
        "workload": {"n_points": n_points, "n_queries": n_queries,
                     "k": k, "n_frames": n_frames,
                     "tenant_counts": list(tenant_counts),
                     "repeats": repeats, "workers": workers,
                     "pool_workers": pool_workers,
                     "cpu_count": os.cpu_count()},
        "results": results,
        "bit_equal_checked": bool(check),
        "fleet_effective_ok": fleet_effective_ok,
        # The headline acceptance: one shared fleet matches or beats N
        # independent process pools on aggregate throughput at the
        # largest tenant count, with no cache sharing to help it.
        "fleet_ge_dedicated_at_largest":
            largest_distinct["fleet_fps"]
            >= largest_distinct["dedicated_fps"],
        "fleet_over_dedicated_at_largest":
            largest_distinct["fleet_over_dedicated"],
        # Shared-scene tenants beyond the first must replay cached
        # window results (cross-tenant deduplication).
        "shared_scene_cache_hits": all(
            any(t["cache_hits"] > 0 for t in row["tenants"][1:])
            for row in shared_rows) if shared_rows else False,
        "shm_leftovers": _shm_leftovers(),
    }
    if output:
        with open(output, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
    lines = [f"{'scenario':16s} {'N':>2s} {'ded_fps':>8s} "
             f"{'fleet_fps':>9s} {'fleet/ded':>10s} {'ded_p99':>8s} "
             f"{'flt_p99':>8s} {'hits':>6s} {'bytes':>10s}"]
    for row in results:
        hits = sum(t["cache_hits"] for t in row["tenants"])
        shipped = sum(t["state_bytes_shipped"] for t in row["tenants"])
        lines.append(
            f"{row['scenario']:16s} {row['sessions']:2d} "
            f"{row['dedicated_fps']:8.2f} {row['fleet_fps']:9.2f} "
            f"{row['fleet_over_dedicated']:9.2f}x "
            f"{row['dedicated_p99_ms']:7.1f}m {row['fleet_p99_ms']:7.1f}m "
            f"{hits:6d} {shipped:10d}")
    lines.append(
        f"effective: dedicated={results[0]['dedicated_effective'][0]}, "
        f"fleet={results[0]['fleet_effective'][0]} "
        f"(all fleet rows fleet:shm: {fleet_effective_ok})")
    lines.append(
        f"N={largest} distinct-scenes fleet/dedicated: "
        f"{payload['fleet_over_dedicated_at_largest']:.2f}x "
        f"(>=1.0: {payload['fleet_ge_dedicated_at_largest']})")
    lines.append(
        f"shared-scene cross-tenant cache hits: "
        f"{payload['shared_scene_cache_hits']}")
    lines.append(
        f"workload: n={n_points}, q={n_queries}, k={k}, "
        f"frames={n_frames}, tenants={list(tenant_counts)}, "
        f"repeats={repeats}, pool_workers={pool_workers}, "
        f"cpus={os.cpu_count()}")
    emit("fleet_service", lines, results_dir=results_dir)
    if output:
        print(f"wrote {output}")
    return payload


def smoke(tmp_output=None):
    """Tiny configuration exercising the full harness (pytest smoke).

    Smoke timings are timer noise, so the text table is never persisted
    (``results_dir=None``) — only the JSON goes to ``tmp_output``.
    """
    return run(n_points=300, n_queries=40, k=4, n_frames=2,
               tenant_counts=(2,), repeats=1, workers=2,
               output=tmp_output, results_dir=None)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--points", type=int, default=4096)
    parser.add_argument("--queries", type=int, default=256)
    parser.add_argument("--k", type=int, default=8)
    parser.add_argument("--frames", type=int, default=6)
    parser.add_argument("--tenants", type=int, nargs="+",
                        default=[2, 8])
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--output", default=_DEFAULT_OUTPUT)
    parser.add_argument("--smoke", action="store_true",
                        help="run the tiny smoke configuration")
    args = parser.parse_args()
    if args.smoke:
        smoke(tmp_output=args.output)
        return
    run(n_points=args.points, n_queries=args.queries, k=args.k,
        n_frames=args.frames, tenant_counts=tuple(args.tenants),
        repeats=args.repeats, workers=args.workers,
        output=args.output)


if __name__ == "__main__":
    main()
