"""Perf benchmark: batched grouping engine vs the seed per-query path.

Times ``GroupingContext.knn_group`` / ``ball_group`` on a 4096-point
cloud with 512 queries (k = 32) under the paper's Base / CS / CS+DT
variants, against a faithful replica of the seed implementation: one
query at a time, one ``np.linalg.norm`` call per visited tree node, and
a per-query O(N) padding fallback.  Both sides share the same trees and
windows, so the measured delta is purely the batched engine.

Emits ``BENCH_neighbors.json`` at the repo root (override with
``--output``) to seed the perf trajectory, plus a text table under
``benchmarks/results/``.  Also cross-checks that the batched results are
element-for-element identical to the seed path before timing is trusted.
"""

from __future__ import annotations

import argparse
import heapq
import json
import os

import numpy as np

from repro.core.config import SplittingConfig, StreamGridConfig, \
    TerminationConfig
from repro.core.cotraining import GroupingContext, baseline_config, \
    cs_config, cs_dt_config

from _common import REPO_ROOT, RESULTS_DIR, emit, time_best

_DEFAULT_OUTPUT = os.path.join(REPO_ROOT, "BENCH_neighbors.json")


# ----------------------------------------------------------------------
# Faithful replica of the seed (pre-batching) per-query search path
# ----------------------------------------------------------------------
def _seed_knn(tree, query, k, max_steps=None, record_trace=False):
    """The original per-node-numpy kNN traversal (indices only)."""
    query = np.asarray(query, dtype=np.float64)
    k = min(k, len(tree.points))
    heap = []
    steps = 0
    trace = []
    stack = [(tree.root, 0.0)]
    while stack:
        node, split_dist = stack.pop()
        if node == -1:
            continue
        worst = -heap[0][0] if len(heap) == k else np.inf
        if split_dist > worst:
            continue
        if max_steps is not None and steps >= max_steps:
            break
        steps += 1
        if record_trace:
            trace.append(node)
        pidx = int(tree.point_index[node])
        dist = float(np.linalg.norm(tree.points[pidx] - query))
        if len(heap) < k:
            heapq.heappush(heap, (-dist, pidx))
        elif dist < worst:
            heapq.heapreplace(heap, (-dist, pidx))
        axis = int(tree.axis[node])
        diff = float(query[axis] - tree.points[pidx, axis])
        near, far = ((tree.left[node], tree.right[node]) if diff < 0
                     else (tree.right[node], tree.left[node]))
        stack.append((int(far), abs(diff)))
        stack.append((int(near), 0.0))
    found = sorted(((-d, i) for d, i in heap))
    return np.array([i for _, i in found], dtype=np.int64)


def _seed_range(tree, query, radius, max_steps=None, max_results=None,
                record_trace=False):
    """The original per-node-numpy ball-query traversal (indices only)."""
    query = np.asarray(query, dtype=np.float64)
    found = []
    steps = 0
    trace = []
    stack = [tree.root]
    while stack:
        node = stack.pop()
        if node == -1:
            continue
        if max_steps is not None and steps >= max_steps:
            break
        steps += 1
        if record_trace:
            trace.append(node)
        pidx = int(tree.point_index[node])
        dist = float(np.linalg.norm(tree.points[pidx] - query))
        if dist <= radius:
            found.append((dist, pidx))
        axis = int(tree.axis[node])
        diff = float(query[axis] - tree.points[pidx, axis])
        near, far = ((tree.left[node], tree.right[node]) if diff < 0
                     else (tree.right[node], tree.left[node]))
        if abs(diff) <= radius:
            stack.append(int(far))
        stack.append(int(near))
    found.sort()
    if max_results is not None:
        found = found[:max_results]
    return np.array([i for _, i in found], dtype=np.int64)


def _seed_pad(positions, indices, size, query):
    """The original per-query padding with its O(N) norm fallback."""
    if len(indices) == 0:
        nearest = int(np.argmin(
            np.linalg.norm(positions - query, axis=1)))
        indices = np.array([nearest], dtype=np.int64)
    if len(indices) >= size:
        return indices[:size]
    pad = np.full(size - len(indices), indices[0], dtype=np.int64)
    return np.concatenate([indices, pad])


class SeedGrouping:
    """Seed grouping semantics on top of an existing context's trees.

    Shares the (already built) kd-trees and windows with the batched
    context so the comparison isolates dispatch + inner-loop cost.
    """

    def __init__(self, context: GroupingContext) -> None:
        self._ctx = context

    def _window_search(self, query, runner):
        splitter = self._ctx._splitter
        chunk = int(splitter.chunk_of_queries(query[None, :])[0])
        widx = splitter.index.window_for_chunk(chunk)
        tree = splitter.index._trees[widx]
        members = splitter.index._members[widx]
        if tree is None:
            return np.zeros(0, dtype=np.int64)
        return members[runner(tree)]

    def knn_group(self, queries, k):
        ctx = self._ctx
        groups = []
        for query in np.atleast_2d(queries):
            if ctx._splitter is not None:
                # The seed windowed path always recorded traversal traces
                # (it fed the accessed-chunk accounting).
                indices = self._window_search(
                    query, lambda t: _seed_knn(t, query, k,
                                               max_steps=ctx._deadline,
                                               record_trace=True))
            else:
                indices = _seed_knn(ctx._tree, query, k,
                                    max_steps=ctx._deadline)
            groups.append(_seed_pad(ctx.positions, indices, k, query))
        return np.stack(groups)

    def ball_group(self, queries, radius, max_results):
        ctx = self._ctx
        groups = []
        for query in np.atleast_2d(queries):
            if ctx._splitter is not None:
                indices = self._window_search(
                    query, lambda t: _seed_range(
                        t, query, radius, max_steps=ctx._deadline,
                        max_results=max_results, record_trace=True))
            else:
                indices = _seed_range(ctx._tree, query, radius,
                                      max_steps=ctx._deadline,
                                      max_results=max_results)
            groups.append(_seed_pad(ctx.positions, indices,
                                    max_results, query))
        return np.stack(groups)


# ----------------------------------------------------------------------
# Benchmark harness
# ----------------------------------------------------------------------
def _variants():
    splitting = SplittingConfig(shape=(3, 3, 1), kernel=(2, 2, 1))
    termination = TerminationConfig(profile_queries=32)
    base = StreamGridConfig(splitting=splitting, termination=termination)
    return [("Base", baseline_config()),
            ("CS", cs_config(base)),
            ("CS+DT", cs_dt_config(base))]




def run(n_points=4096, n_queries=512, k=32, radius=0.125,
        repeats=2, output=_DEFAULT_OUTPUT, check=True,
        results_dir=RESULTS_DIR):
    """Run the comparison; returns (and writes) the JSON payload."""
    rng = np.random.default_rng(42)
    positions = rng.uniform(0.0, 1.0, size=(n_points, 3))
    queries = positions[rng.choice(n_points, size=n_queries,
                                   replace=False)]
    results = []
    for name, config in _variants():
        context = GroupingContext(positions, config, calibration_k=k)
        seed = SeedGrouping(context)
        for op, batched_fn, seed_fn in (
            ("knn_group",
             lambda: context.knn_group(queries, k),
             lambda: seed.knn_group(queries, k)),
            ("ball_group",
             lambda: context.ball_group(queries, radius, k),
             lambda: seed.ball_group(queries, radius, k)),
        ):
            # The batched side is cheap; extra trials stabilise its
            # min against scheduler noise without inflating runtime.
            batched_s, batched_out = time_best(batched_fn,
                                               max(5, repeats * 3))
            seed_s, seed_out = time_best(seed_fn, repeats)
            if check and not np.array_equal(batched_out, seed_out):
                raise AssertionError(
                    f"{name}/{op}: batched result differs from seed path"
                )
            results.append({
                "variant": name,
                "op": op,
                "seed_s": seed_s,
                "batched_s": batched_s,
                "speedup": seed_s / batched_s if batched_s > 0 else np.inf,
            })
    payload = {
        "benchmark": "neighbors_grouping",
        "workload": {"n_points": n_points, "n_queries": n_queries,
                     "k": k, "radius": radius, "repeats": repeats},
        "results": results,
        "min_speedup": min(r["speedup"] for r in results),
    }
    if output:
        with open(output, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
    lines = [f"{'variant':8s} {'op':12s} {'seed_s':>10s} "
             f"{'batched_s':>10s} {'speedup':>8s}"]
    for row in results:
        lines.append(f"{row['variant']:8s} {row['op']:12s} "
                     f"{row['seed_s']:10.4f} {row['batched_s']:10.4f} "
                     f"{row['speedup']:7.1f}x")
    lines.append(f"min speedup: {payload['min_speedup']:.1f}x "
                 f"(n={n_points}, q={n_queries}, k={k})")
    emit("perf_neighbors", lines, results_dir=results_dir)
    if output:
        print(f"wrote {output}")
    return payload


def smoke(tmp_output=None):
    """Tiny configuration exercising the full harness (pytest smoke).

    Smoke timings are timer noise, so the text table is never persisted
    (``results_dir=None``) — only the JSON goes to ``tmp_output``.
    """
    return run(n_points=160, n_queries=12, k=4, radius=0.3,
               repeats=1, output=tmp_output, results_dir=None)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--points", type=int, default=4096)
    parser.add_argument("--queries", type=int, default=512)
    parser.add_argument("--k", type=int, default=32)
    parser.add_argument("--radius", type=float, default=0.125)
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument("--output", default=_DEFAULT_OUTPUT)
    args = parser.parse_args()
    run(n_points=args.points, n_queries=args.queries, k=args.k,
        radius=args.radius, repeats=args.repeats, output=args.output)


if __name__ == "__main__":
    main()
