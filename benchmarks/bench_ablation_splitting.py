"""Ablation: naive splitting vs compulsory splitting (paper Fig. 8).

The paper's strawman splits the cloud into fully independent chunks
(kernel 1): same pipelining, worse accuracy, because cross-chunk
dependencies are severed.  Compulsory splitting keeps a stencil window of
chunks.  We measure (a) kNN recall against exact search under both
schemes and (b) the streaming-schedule speedup both unlock (identical —
the win of CS is accuracy at equal performance), plus the balanced-
partition extension.
"""

import numpy as np

from repro.core import CompulsorySplitter, SplittingConfig
from repro.core.extensions import balanced_partition, partition_balance
from repro.core.splitting import naive_partition
from repro.core.streaming import pointnet_fig8_pipeline
from repro.datasets import make_lidar_cloud
from repro.spatial import brute_force_knn

from _common import emit


def _recall(splitter: CompulsorySplitter, pts: np.ndarray, k: int
            ) -> float:
    hits = total = 0
    for qi in range(0, len(pts), 25):
        truth = set(brute_force_knn(pts, pts[qi], k).indices.tolist())
        found = set(splitter.knn(pts[qi], k).indices.tolist())
        hits += len(found & truth)
        total += len(truth)
    return hits / total


def _run():
    cloud = make_lidar_cloud(n_points=1500, seed=0)
    pts = cloud.positions
    cs_config = SplittingConfig(shape=(3, 3, 1), kernel=(2, 2, 1))
    naive_config = naive_partition(cs_config)
    cs = CompulsorySplitter(pts, cs_config)
    naive = CompulsorySplitter(pts, naive_config)
    model = pointnet_fig8_pipeline()
    return {
        "recall_cs": _recall(cs, pts, 8),
        "recall_naive": _recall(naive, pts, 8),
        "speedup_cs": model.splitting_speedup(cs.n_windows, len(pts)),
        "speedup_naive": model.splitting_speedup(naive.n_windows,
                                                 len(pts)),
        "balance_uniform": partition_balance(cs.assignment, cs.n_chunks),
        "balance_kd": partition_balance(balanced_partition(pts, 8), 8),
    }


def test_bench_ablation_splitting(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)

    emit("ablation_splitting", [
        "scheme               kNN recall  pipeline speedup",
        f"naive (kernel 1)     {results['recall_naive']:>10.3f}  "
        f"{results['speedup_naive']:>15.2f}x",
        f"compulsory (2x2)     {results['recall_cs']:>10.3f}  "
        f"{results['speedup_cs']:>15.2f}x",
        "",
        "partitioner balance (max/min chunk population):",
        f"uniform grid: {results['balance_uniform']:.2f}   "
        f"balanced kd-partition: {results['balance_kd']:.2f}",
        "paper shape (Fig. 8): both unlock pipelining; naive splitting "
        "costs accuracy, compulsory splitting preserves it",
    ])

    assert results["recall_cs"] > results["recall_naive"]
    assert results["speedup_cs"] > 1.1
    assert results["balance_kd"] <= results["balance_uniform"] + 1e-9
