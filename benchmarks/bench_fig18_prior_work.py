"""Fig. 18: speedup and normalised energy against prior accelerators.

All designs get 256 PEs and comparable on-chip storage.  Paper factors:
classification/segmentation — 1.4x over PointAcc, 2.4x over Mesorasi,
1.2x over Base+$; registration — 30.4x over QuickNN, 28.9x over Tigris,
13.1x over Base+$; rendering — 1.9x over GSCore.  The reproduction targets
the ordering and rough magnitudes.
"""

from repro.pipelines import build_pipeline
from repro.sim import evaluate_accelerators, evaluate_all_variants

from _common import emit

PIPELINES = (
    ("classification", {"n_points": 1024}),
    ("segmentation", {"n_points": 1024}),
    ("registration", {"n_scan_points": 4096}),
    ("rendering", {"n_gaussians": 16384}),
)


def _run():
    results = {}
    for name, kwargs in PIPELINES:
        spec = build_pipeline(name, **kwargs)
        variants = evaluate_all_variants(spec.graph, spec.workload)
        priors = evaluate_accelerators(spec.hardware_baselines,
                                       spec.workload)
        results[name] = (variants, priors)
    return results


def test_bench_fig18(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)

    lines = ["pipeline        comparator  speedup(CS+DT)  "
             "energy_saving(CS+DT)"]
    speedups = []
    for name, (variants, priors) in results.items():
        csdt = variants["CS+DT"]
        rows = {"Base+$": variants["Base+$"]}
        rows.update(priors)
        for comp_name, comp in rows.items():
            speedup = comp.cycles / csdt.cycles
            saving = 1 - csdt.energy_pj / comp.energy_pj
            if comp_name != "Base+$":
                speedups.append(speedup)
            lines.append(f"{name:14s}  {comp_name:9s}  "
                         f"{speedup:>13.2f}x  {saving:>19.1%}")
    mean_speedup = sum(speedups) / len(speedups)
    lines.append(f"mean speedup over prior accelerators: "
                 f"{mean_speedup:.1f}x (paper: 10.0x, energy 3.9x)")
    emit("fig18_prior_work", lines)

    # Who-wins checks per domain.
    cls_variants, cls_priors = results["classification"]
    assert cls_priors["PointAcc"].cycles > cls_variants["CS+DT"].cycles
    assert cls_priors["Mesorasi"].cycles > cls_priors["PointAcc"].cycles
    reg_variants, reg_priors = results["registration"]
    assert (reg_priors["QuickNN"].cycles
            / reg_variants["CS+DT"].cycles) > 5.0
    ren_variants, ren_priors = results["rendering"]
    assert ren_priors["GSCore"].cycles > ren_variants["CS+DT"].cycles
