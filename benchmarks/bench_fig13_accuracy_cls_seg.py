"""Fig. 13: classification / segmentation accuracy, Base vs CS vs CS+DT.

Paper setting: 3x3x1 chunks with a 2x2 kernel (= 4 windows), deadline at
25% of a full traversal; co-trained models lose <=1% accuracy on average.
We train the from-scratch PointNet++ models under each variant config
(co-training) and report the same three bars per task.
"""

import numpy as np

from repro.core import SplittingConfig, StreamGridConfig, TerminationConfig
from repro.datasets import make_modelnet, make_shapenet
from repro.nn import (
    ClassifierSpec,
    SALevelSpec,
    SegmenterSpec,
    evaluate_classifier,
    evaluate_segmenter,
    train_classifier,
    train_segmenter,
)

from _common import emit

_SPLIT = SplittingConfig(shape=(3, 3, 1), kernel=(2, 2, 1))
_TERM = TerminationConfig(deadline_fraction=0.25, profile_queries=12)

CONFIGS = {
    "Base": StreamGridConfig(splitting=_SPLIT, termination=_TERM,
                             use_splitting=False, use_termination=False),
    "CS": StreamGridConfig(splitting=_SPLIT, termination=_TERM,
                           use_splitting=True, use_termination=False),
    "CS+DT": StreamGridConfig(splitting=_SPLIT, termination=_TERM,
                              use_splitting=True, use_termination=True),
}

_CLS_SPEC = ClassifierSpec(sa1=SALevelSpec(24, 0.45, 12),
                           sa2=SALevelSpec(8, 0.9, 6))
_SEG_SPEC = SegmenterSpec(sa1=SALevelSpec(24, 0.35, 8),
                          sa2=SALevelSpec(6, 0.7, 4))


def _run_classification():
    ds = make_modelnet(10, n_points=96,
                       class_names=("sphere", "box", "torus", "plane",
                                    "cross"), seed=0)
    train, test = ds.split(0.6, np.random.default_rng(1))
    scores = {}
    for name, config in CONFIGS.items():
        run = train_classifier(train, config, epochs=20, lr=0.003,
                               seed=0, spec=_CLS_SPEC)
        scores[name] = evaluate_classifier(run, test)
    return scores


def _run_segmentation():
    ds = make_shapenet(4, n_points=128, seed=0)
    train, test = ds.split(0.67, np.random.default_rng(1))
    scores = {}
    for name, config in CONFIGS.items():
        run = train_segmenter(train, config, epochs=20, lr=0.01,
                              seed=0, spec=_SEG_SPEC)
        scores[name] = evaluate_segmenter(run, test)
    return scores


def test_bench_fig13(benchmark):
    cls = benchmark.pedantic(_run_classification, rounds=1, iterations=1)
    seg = _run_segmentation()

    lines = ["task             Base      CS     CS+DT"]
    lines.append("classification  {Base:.3f}  {CS:.3f}  {csdt:.3f}".format(
        csdt=cls["CS+DT"], **cls))
    lines.append("segmentation    {Base:.3f}  {CS:.3f}  {csdt:.3f}".format(
        csdt=seg["CS+DT"], **seg))
    lines.append("paper shape: CS loses ~0.6%, CS+DT <1% vs Base "
                 "(co-trained)")
    emit("fig13_accuracy_cls_seg", lines)

    # Co-trained CS / CS+DT stay within a modest band of Base.
    assert cls["CS"] >= cls["Base"] - 0.25
    assert cls["CS+DT"] >= cls["Base"] - 0.25
    assert seg["CS"] >= seg["Base"] - 0.25
    assert seg["CS+DT"] >= seg["Base"] - 0.25
