"""Arena-fusion benchmark: one lockstep launch per batch, not per window.

Times a rolling query stream over a many-window serial-mode split (32
windows by default) with the scheduler's arena fusion on versus off.
Per-window dispatch pays the lockstep engine's fixed interpreter cost
once per window per frame; the fused
:class:`~repro.spatial.kdtree.TraversalArena` path concatenates every
compatible window's packed node arrays and pays it once per launch —
the paper's parallel traversal-unit dispatch amortized in software.

Before any timing is trusted, every frame's fused results are checked
element-for-element (indices, distances, counts, steps, terminated)
against the per-window dispatch of the same frame — fusion must be a
pure *how-it-runs* change.  Each row records the backend actually in
force (``effective``) plus the arena counters
(:class:`repro.runtime.RuntimeStats`: launches, fused-group histogram,
bytes viewed), and the headline fused/per-window frames-per-second
ratio is taken on the **serial** backend only — pooled backends
overlap windows across workers, so their fusion win is reported but
never used to claim the headline.  Emits ``BENCH_arena.json`` at the
repo root (override with ``--output``) plus a text table under
``benchmarks/results/``.
"""

from __future__ import annotations

import argparse
import json
import os

import numpy as np

from repro.core.config import SplittingConfig
from repro.core.splitting import CompulsorySplitter
from repro.runtime import resolve_worker_count

from _common import REPO_ROOT, RESULTS_DIR, emit, time_best

_DEFAULT_OUTPUT = os.path.join(REPO_ROOT, "BENCH_arena.json")

#: Serial first — it carries the headline ratio.
BACKENDS = ("serial", "thread", "process")


def _splitting(n_windows):
    """A serial-mode split with exactly *n_windows* kernel windows."""
    return SplittingConfig(shape=(n_windows + 1, 1, 1),
                          kernel=(2, 1, 1), mode="serial")


def _check_equal(name, got, want):
    for fld in ("indices", "distances", "counts", "steps", "terminated"):
        if not np.array_equal(getattr(got, fld), getattr(want, fld)):
            raise AssertionError(
                f"{name}: fused result field {fld!r} differs from "
                f"per-window dispatch")


def run(n_points=40000, n_queries=2048, n_frames=6, n_windows=32, k=8,
        max_steps=48, radius=0.05, max_results=16, repeats=3,
        workers=None, output=_DEFAULT_OUTPUT, check=True,
        results_dir=RESULTS_DIR):
    """Run the fused-vs-per-window comparison; returns the payload.

    The stream keeps positions fixed and draws a fresh query batch per
    frame, so traversal dispatch — not index repair — dominates what is
    timed.
    """
    rng = np.random.default_rng(11)
    positions = rng.uniform(0.0, 1.0, size=(n_points, 3))
    frames = [rng.uniform(0.0, 1.0, size=(n_queries, 3))
              for _ in range(n_frames)]
    splitting = _splitting(n_windows)
    pool_workers = workers if workers is not None \
        else max(2, resolve_worker_count(None))
    results = []
    for backend in BACKENDS:
        sides = {}
        for fusion in (True, False):
            sides[fusion] = CompulsorySplitter(
                positions, splitting, executor=backend,
                executor_workers=None if backend == "serial"
                else pool_workers, arena_fusion=fusion)
        fused, plain = sides[True], sides[False]
        chunks = [fused.chunk_of_queries(q) for q in frames]
        ops = (
            ("knn_capped", lambda side: [
                side.knn_batch(q, k, max_steps=max_steps,
                               query_chunks=c)
                for q, c in zip(frames, chunks)]),
            ("range_capped", lambda side: [
                side.range_batch(q, radius, max_steps=max_steps,
                                 max_results=max_results,
                                 query_chunks=c)
                for q, c in zip(frames, chunks)]),
        )
        for op, stream in ops:
            fused_frames = stream(fused)       # warm up + gate material
            plain_frames = stream(plain)
            if check:
                for i, (got, want) in enumerate(zip(fused_frames,
                                                    plain_frames)):
                    _check_equal(f"{backend}/{op}/frame{i}", got, want)
            fused_s, _ = time_best(lambda: stream(fused), repeats)
            plain_s, _ = time_best(lambda: stream(plain), repeats)
            stats = fused.index.runtime_stats.snapshot()
            results.append({
                "backend": backend,
                "effective": fused.effective_executor,
                "windows": fused.n_windows,
                "op": op,
                "fused_s": fused_s,
                "per_window_s": plain_s,
                "fused_fps": n_frames / fused_s,
                "per_window_fps": n_frames / plain_s,
                "fused_over_per_window":
                    plain_s / fused_s if fused_s else 0.0,
                "arena_launches": stats["arena_launches"],
                "arena_units_fused": {
                    str(size): count for size, count
                    in sorted(stats["arena_units_fused"].items())},
                "arena_bytes_viewed": stats["arena_bytes_viewed"],
                "equal": bool(check),
            })
        fused.close()
        plain.close()

    # The headline only counts serial rows that really ran serial (the
    # reference backend cannot fall back, but keep the accounting
    # honest and uniform with the other benchmarks).
    serial_ratios = [row["fused_over_per_window"] for row in results
                     if row["backend"] == "serial"
                     and row["effective"] == "serial"]
    best_serial = max(serial_ratios) if serial_ratios else 0.0
    payload = {
        "benchmark": "arena_fusion",
        "workload": {"n_points": n_points, "n_queries": n_queries,
                     "n_frames": n_frames, "n_windows": n_windows,
                     "k": k, "max_steps": max_steps, "radius": radius,
                     "max_results": max_results, "repeats": repeats,
                     "workers": workers, "pool_workers": pool_workers,
                     "cpu_count": os.cpu_count()},
        "results": results,
        "best_serial_fused_over_per_window": best_serial,
        "serial_fused_ge_1_5x": best_serial >= 1.5,
    }
    if output:
        with open(output, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
    lines = [f"{'backend':8s} {'eff':8s} {'win':>4s} {'op':13s} "
             f"{'fused_s':>9s} {'perwin_s':>9s} {'fps':>8s} "
             f"{'ratio':>7s} {'launches':>9s}"]
    for row in results:
        lines.append(
            f"{row['backend']:8s} {row['effective']:8s} "
            f"{row['windows']:4d} {row['op']:13s} "
            f"{row['fused_s']:9.4f} {row['per_window_s']:9.4f} "
            f"{row['fused_fps']:8.2f} "
            f"{row['fused_over_per_window']:6.2f}x "
            f"{row['arena_launches']:9d}")
    lines.append(
        f"best serial fused/per-window frames-per-second ratio: "
        f"{best_serial:.2f}x (>=1.5: {payload['serial_fused_ge_1_5x']})")
    lines.append(
        f"workload: n={n_points}, q={n_queries}/frame, "
        f"frames={n_frames}, windows={n_windows}, k={k}, "
        f"max_steps={max_steps}, repeats={repeats}, "
        f"pool_workers={pool_workers}, cpus={os.cpu_count()}")
    emit("arena_fusion", lines, results_dir=results_dir)
    if output:
        print(f"wrote {output}")
    return payload


def smoke(tmp_output=None):
    """Tiny configuration exercising the full harness (pytest smoke).

    Smoke timings are timer noise, so the text table is never persisted
    (``results_dir=None``) — only the JSON goes to ``tmp_output``.
    """
    return run(n_points=600, n_queries=48, n_frames=2, n_windows=8,
               k=4, max_steps=12, radius=0.2, max_results=5, repeats=1,
               output=tmp_output, results_dir=None)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--points", type=int, default=40000)
    parser.add_argument("--queries", type=int, default=2048)
    parser.add_argument("--frames", type=int, default=6)
    parser.add_argument("--windows", type=int, default=32)
    parser.add_argument("--k", type=int, default=8)
    parser.add_argument("--max-steps", type=int, default=48)
    parser.add_argument("--radius", type=float, default=0.05)
    parser.add_argument("--max-results", type=int, default=16)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--output", default=_DEFAULT_OUTPUT)
    parser.add_argument("--smoke", action="store_true",
                        help="run the tiny smoke configuration")
    args = parser.parse_args()
    if args.smoke:
        smoke(tmp_output=args.output)
        return
    run(n_points=args.points, n_queries=args.queries,
        n_frames=args.frames, n_windows=args.windows, k=args.k,
        max_steps=args.max_steps, radius=args.radius,
        max_results=args.max_results, repeats=args.repeats,
        workers=args.workers, output=args.output)


if __name__ == "__main__":
    main()
