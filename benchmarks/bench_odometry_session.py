"""Throughput benchmark: one-shot odometry vs the session-backed estimator.

Runs A-LOAM-style scan-to-scan odometry over a simulated KITTI-like
drive three ways, under all three window-shard runtime backends:

* ``oneshot`` — the **per-scan-rebuild baseline** (the seed behaviour
  this repo started from): a fresh
  :class:`~repro.core.cotraining.GroupingContext` (grid + window
  kd-trees + executor pool + deadline profile) per feature cloud of
  *each* scan pair, answering kNN **one query point at a time** through
  a Python callable;
* ``oneshot-batched`` — same rebuild-per-pair contexts, but the
  Gauss-Newton solve issues one batched kNN call per iteration per
  feature type (isolates the plan-batching win from the warm-state
  win);
* ``warm`` — the session-backed
  :class:`~repro.registration.odometry.OdometrySession`: two persistent
  feature-cloud :class:`~repro.streaming.StreamSession`\\ s (edges and
  planes) warm across the whole sequence, drift-gated deadline
  re-calibration instead of a per-pair profile, and every Gauss-Newton
  iteration one :class:`~repro.streaming.FramePlan` dispatch.

Before any timing is trusted, all three modes run under a *pinned*
deadline (same ``deadline_steps``) and their pose trajectories are
checked **bit-equal** — mode changes must be pure execution-shape
changes.  The timed runs then use each mode's own deadline policy
(profiled per pair for the one-shot modes, drift-gated for the warm
session — that calibration skip is part of the point).  Each row
records every mode's ``effective`` executor so fallback rows can never
masquerade as a pooled measurement.  Emits ``BENCH_odometry.json`` at
the repo root (override with ``--output``) plus a text table under
``benchmarks/results/``.
"""

from __future__ import annotations

import argparse
import json
import os

import numpy as np

from repro.core.config import (
    SplittingConfig,
    StreamGridConfig,
    TerminationConfig,
)
from repro.core.cotraining import GroupingContext
from repro.datasets import ScannerConfig, make_kitti_sequence
from repro.registration import OdometrySession, run_odometry
from repro.registration.features import FeatureConfig, extract_features
from repro.registration.icp import gauss_newton_align
from repro.runtime import resolve_worker_count

from _common import REPO_ROOT, RESULTS_DIR, emit, time_best

_DEFAULT_OUTPUT = os.path.join(REPO_ROOT, "BENCH_odometry.json")

BACKENDS = ("serial", "thread", "process")
#: The paper's registration splitting: serial 4 chunks, width-2 window.
_SPLITTING = SplittingConfig(shape=(4, 1, 1), kernel=(2, 1, 1),
                             mode="serial")


def _config(backend, pool_workers, deadline_steps=None):
    return StreamGridConfig(
        splitting=_SPLITTING,
        termination=TerminationConfig(deadline_steps=deadline_steps),
        use_splitting=True, use_termination=True,
        executor=backend,
        executor_workers=None if backend == "serial" else pool_workers)


def _per_point_knn(context):
    """The seed-style correspondence search: one context dispatch per
    query point, wrapped behind the batched interface the solver asks
    for (row parity with ``knn_group`` is proven by the PR 1
    equivalence suite, so poses stay bit-equal)."""
    def knn(queries, k):
        return np.stack([context.knn_group(q[None, :], k)[0]
                         for q in queries])
    return knn


def _run_oneshot(sequence, config, fc, max_iterations, per_point):
    """Rebuild-per-pair odometry; returns (poses, effective executor)."""
    features = [extract_features(scan, fc) for scan in sequence.scans]
    poses = [np.asarray(sequence.poses[0], dtype=np.float64).copy()]
    relative = np.eye(4)
    effective = None
    for i in range(1, len(sequence)):
        prev_edges, prev_planes = features[i - 1]
        cur_edges, cur_planes = features[i]
        with GroupingContext(prev_edges.positions, config,
                             calibration_k=2) as edge_ctx, \
                GroupingContext(prev_planes.positions, config,
                                calibration_k=3) as plane_ctx:
            effective = edge_ctx.effective_executor
            edge_knn = _per_point_knn(edge_ctx) if per_point \
                else edge_ctx.knn_group
            plane_knn = _per_point_knn(plane_ctx) if per_point \
                else plane_ctx.knn_group
            result = gauss_newton_align(
                cur_edges.positions, cur_planes.positions,
                prev_edges.positions, prev_planes.positions,
                edge_knn, plane_knn, initial=relative,
                max_iterations=max_iterations)
        relative = result.transform
        poses.append(poses[-1] @ result.transform)
    return poses, effective


def _run_warm(sequence, config, fc, max_iterations):
    """Session-backed odometry; returns (poses, effective, stats)."""
    with OdometrySession(config, feature_config=fc,
                         max_iterations=max_iterations,
                         start_pose=sequence.poses[0]) as estimator:
        estimator.run(sequence.scans)
        return (estimator.result().poses, estimator.effective_executor,
                estimator.stats["edges"])


def _check_poses_equal(name, got, want):
    if len(got) != len(want) or not all(
            np.array_equal(a, b) for a, b in zip(got, want)):
        raise AssertionError(
            f"{name}: poses diverged from the per-point one-shot "
            "reference at the same pinned deadline")


def run(n_scans=6, n_azimuth=240, n_beams=8, max_iterations=4,
        pinned_deadline=25, repeats=3, workers=None,
        output=_DEFAULT_OUTPUT, check=True, results_dir=RESULTS_DIR):
    """Run the three-mode comparison; returns (and writes) the payload."""
    pool_workers = workers if workers is not None \
        else max(2, resolve_worker_count(None))
    fc = FeatureConfig(half_window=4, n_edge_per_ring=10,
                       n_planar_per_ring=24)
    sequence = make_kitti_sequence(
        n_scans=n_scans, seed=0, step=0.3,
        config=ScannerConfig(n_azimuth=n_azimuth, n_beams=n_beams))
    edges, planes = extract_features(sequence.scans[0], fc)
    results = []
    for backend in BACKENDS:
        if check:
            # Equality gate at a PINNED deadline: all three execution
            # shapes must chain bit-identical poses.
            pinned = _config(backend, pool_workers,
                             deadline_steps=pinned_deadline)
            ref, _ = _run_oneshot(sequence, pinned, fc, max_iterations,
                                  per_point=True)
            batched = run_odometry(sequence, pinned, feature_config=fc,
                                   max_iterations=max_iterations,
                                   warm=False)
            _check_poses_equal(f"{backend}/oneshot-batched",
                               batched.poses, ref)
            warm_poses, _, _ = _run_warm(sequence, pinned, fc,
                                         max_iterations)
            _check_poses_equal(f"{backend}/warm", warm_poses, ref)
        config = _config(backend, pool_workers)
        oneshot_s, (_, oneshot_eff) = time_best(
            lambda: _run_oneshot(sequence, config, fc, max_iterations,
                                 per_point=True), repeats)
        batched_s, (_, batched_eff) = time_best(
            lambda: _run_oneshot(sequence, config, fc, max_iterations,
                                 per_point=False), repeats)
        warm_s, (_, warm_eff, stats) = time_best(
            lambda: _run_warm(sequence, config, fc, max_iterations),
            repeats)
        results.append({
            "backend": backend,
            "oneshot_effective": oneshot_eff,
            "batched_effective": batched_eff,
            "warm_effective": warm_eff,
            "oneshot_s": oneshot_s,
            "batched_s": batched_s,
            "warm_s": warm_s,
            "oneshot_sps": n_scans / oneshot_s,
            "batched_sps": n_scans / batched_s,
            "warm_sps": n_scans / warm_s,
            "warm_over_oneshot": oneshot_s / warm_s,
            "warm_over_batched": batched_s / warm_s,
            "calibrations": stats.calibrations,
            "drift_checks": stats.drift_checks,
            "index_fast_path_frames": stats.index_fast_path_frames,
            "cache_hits": stats.cache_hits,
            "cache_misses": stats.cache_misses,
        })
    serial_row = next(r for r in results if r["backend"] == "serial")
    payload = {
        "benchmark": "odometry_session",
        "workload": {"n_scans": n_scans, "n_azimuth": n_azimuth,
                     "n_beams": n_beams, "n_edges": len(edges),
                     "n_planes": len(planes),
                     "max_iterations": max_iterations,
                     "pinned_deadline": pinned_deadline,
                     "repeats": repeats, "workers": workers,
                     "pool_workers": pool_workers,
                     "cpu_count": os.cpu_count()},
        "results": results,
        "serial_warm_over_oneshot": serial_row["warm_over_oneshot"],
        "serial_warm_ge_2x": serial_row["warm_over_oneshot"] >= 2.0,
        "best_warm_over_oneshot": max(r["warm_over_oneshot"]
                                      for r in results),
        "best_warm_over_batched": max(r["warm_over_batched"]
                                      for r in results),
    }
    if output:
        with open(output, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
    lines = [f"{'backend':8s} {'eff(1/b/w)':22s} {'oneshot':>8s} "
             f"{'batched':>8s} {'warm':>8s} {'w/1shot':>8s} "
             f"{'w/batch':>8s} {'recal':>6s} {'hits':>6s}"]
    for row in results:
        eff = (f"{row['oneshot_effective']}/{row['batched_effective']}/"
               f"{row['warm_effective']}")
        lines.append(
            f"{row['backend']:8s} {eff:22s} "
            f"{row['oneshot_sps']:8.2f} {row['batched_sps']:8.2f} "
            f"{row['warm_sps']:8.2f} {row['warm_over_oneshot']:7.2f}x "
            f"{row['warm_over_batched']:7.2f}x "
            f"{row['calibrations']:6d} {row['cache_hits']:6d}")
    lines.append(
        f"scans/sec; serial warm vs per-scan-rebuild baseline: "
        f"{payload['serial_warm_over_oneshot']:.2f}x "
        f"(>=2.0: {payload['serial_warm_ge_2x']})")
    lines.append(
        f"workload: scans={n_scans}, az={n_azimuth}, beams={n_beams}, "
        f"E={len(edges)}, P={len(planes)}, iters={max_iterations}, "
        f"repeats={repeats}, pool_workers={pool_workers}, "
        f"cpus={os.cpu_count()}")
    emit("odometry_session", lines, results_dir=results_dir)
    if output:
        print(f"wrote {output}")
    return payload


def smoke(tmp_output=None):
    """Tiny configuration exercising the full harness (pytest smoke).

    Smoke timings are timer noise, so the text table is never persisted
    (``results_dir=None``) — only the JSON goes to ``tmp_output``.
    """
    return run(n_scans=3, n_azimuth=96, n_beams=6, max_iterations=2,
               pinned_deadline=15, repeats=1, output=tmp_output,
               results_dir=None)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scans", type=int, default=6)
    parser.add_argument("--azimuth", type=int, default=240)
    parser.add_argument("--beams", type=int, default=8)
    parser.add_argument("--iterations", type=int, default=4)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--output", default=_DEFAULT_OUTPUT)
    parser.add_argument("--smoke", action="store_true",
                        help="run the tiny smoke configuration")
    args = parser.parse_args()
    if args.smoke:
        smoke(tmp_output=args.output)
        return
    run(n_scans=args.scans, n_azimuth=args.azimuth, n_beams=args.beams,
        max_iterations=args.iterations, repeats=args.repeats,
        workers=args.workers, output=args.output)


if __name__ == "__main__":
    main()
