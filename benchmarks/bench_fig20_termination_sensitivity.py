"""Fig. 20: sensitivity to the deterministic-termination deadline.

The paper sweeps the deadline from a full traversal down to 1/16 of it:
energy falls with shorter deadlines (most of the gain arrives by 1/4),
classification accuracy barely moves while registration error grows at
aggressive deadlines.  We sweep the same fractions over kNN recall,
registration error, and modelled energy.
"""

import numpy as np

from repro.core import TerminationConfig, TerminationPolicy
from repro.datasets import ScannerConfig, make_kitti_sequence, \
    make_lidar_cloud
from repro.pipelines import build_pipeline
from repro.registration import registration_configs, run_odometry
from repro.registration.features import FeatureConfig
from repro.sim.variants import evaluate_streaming_design
from repro.spatial import KDTree

from _common import emit

FRACTIONS = (1.0, 0.5, 0.25, 0.125, 0.0625)


def _recall_sweep():
    cloud = make_lidar_cloud(n_points=1500, seed=0)
    pts = cloud.positions
    tree = KDTree(pts)
    policy = TerminationPolicy(TerminationConfig(profile_queries=32))
    policy.calibrate(pts, k=8)
    queries = pts[::30]
    exact = [set(tree.knn(q, 8).indices.tolist()) for q in queries]
    recalls = {}
    for fraction in FRACTIONS:
        deadline = policy.scaled_deadline(fraction)
        hits = total = 0
        for q, truth in zip(queries, exact):
            found = set(tree.knn(q, 8, max_steps=deadline)
                        .indices.tolist())
            hits += len(found & truth)
            total += len(truth)
        recalls[fraction] = (hits / total, deadline)
    return recalls


def _registration_sweep():
    sequence = make_kitti_sequence(
        n_scans=3, seed=0, step=0.3,
        config=ScannerConfig(n_azimuth=180, n_beams=6))
    fc = FeatureConfig(half_window=4, n_edge_per_ring=8,
                       n_planar_per_ring=18)
    errors = {}
    for fraction in FRACTIONS:
        configs = registration_configs(n_chunks=4,
                                       deadline_fraction=fraction)
        outcome = run_odometry(sequence, configs["CS+DT"],
                               feature_config=fc)
        errors[fraction] = outcome.errors_against(
            sequence.poses)["mean_translation_error"]
    return errors


def _energy_sweep():
    energies = {}
    for fraction in FRACTIONS:
        term = TerminationConfig(deadline_fraction=fraction,
                                 profile_queries=16)
        spec = build_pipeline("registration", n_scan_points=2048,
                              termination=term)
        report = evaluate_streaming_design("CS+DT", spec.graph,
                                           spec.workload)
        energies[fraction] = report.energy.total_uj
    return energies


def test_bench_fig20(benchmark):
    recalls = benchmark.pedantic(_recall_sweep, rounds=1, iterations=1)
    reg_errors = _registration_sweep()
    energies = _energy_sweep()

    full_energy = energies[1.0]
    lines = ["deadline  knn_recall  deadline_steps  reg_trans_err[m]  "
             "energy_norm"]
    for fraction in FRACTIONS:
        recall, deadline = recalls[fraction]
        lines.append(
            f"{fraction:>8.4f}  {recall:>10.3f}  {deadline:>14d}  "
            f"{reg_errors[fraction]:>16.4f}  "
            f"{energies[fraction] / full_energy:>11.3f}")
    lines.append("paper shape: energy falls with shorter deadlines (most "
                 "gain by 1/4); accuracy degrades at aggressive deadlines")
    emit("fig20_termination_sensitivity", lines)

    assert recalls[1.0][0] >= recalls[0.0625][0] - 1e-9
    assert energies[0.25] <= energies[1.0]
    assert np.isfinite(list(reg_errors.values())).all()
