"""Fig. 14: registration errors, Base vs CS vs CS+DT (A-LOAM / KITTI).

Paper setting: LiDAR clouds split serially into 4 chunks, deadline at 25%
of a full traversal; the techniques add ~0.01% translational error and no
rotational error.  We run the from-scratch odometry over a simulated
sequence under each variant.
"""

from repro.datasets import ScannerConfig, make_kitti_sequence
from repro.registration import compare_registration_variants
from repro.registration.features import FeatureConfig

from _common import emit


def _run():
    sequence = make_kitti_sequence(
        n_scans=5, seed=0, step=0.3,
        config=ScannerConfig(n_azimuth=240, n_beams=8))
    return compare_registration_variants(
        sequence, n_chunks=4, deadline_fraction=0.25,
        feature_config=FeatureConfig(half_window=4, n_edge_per_ring=10,
                                     n_planar_per_ring=24))


def test_bench_fig14(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)

    lines = ["variant  trans_err[m]  rot_err[rad]  rel_drift"]
    for name in ("Base", "CS", "CS+DT"):
        errs = results[name]
        lines.append(
            f"{name:7s}  {errs['mean_translation_error']:.4f}        "
            f"{errs['mean_rotation_error']:.5f}      "
            f"{errs['relative_drift']:.4f}")
    extra_t = (results["CS+DT"]["mean_translation_error"]
               - results["Base"]["mean_translation_error"])
    lines.append(f"CS+DT extra translational error vs Base: {extra_t:+.4f} m")
    lines.append("paper shape: marginal extra error from CS/CS+DT")
    emit("fig14_accuracy_registration", lines)

    base = results["Base"]["mean_translation_error"]
    for variant in ("CS", "CS+DT"):
        assert results[variant]["mean_translation_error"] < base + 0.5
