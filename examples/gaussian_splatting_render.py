"""3D Gaussian Splatting with global vs. chunked (hierarchical) sorting.

Renders a synthetic scene with the exact depth sort and with compulsory
splitting's chunked sort, reporting PSNR and sorting cost — the Fig. 15
experiment in miniature.

Run:  python examples/gaussian_splatting_render.py
"""

from repro.datasets import scene_by_name
from repro.splatting import PinholeCamera, compare_rendering


def main() -> None:
    camera = PinholeCamera(64, 64, 60.0)
    for scene_name in ("tank_temple_like", "deep_blending_like"):
        scene = scene_by_name(scene_name, seed=0)
        report = compare_rendering(scene, camera, grid_shape=(4, 4, 6))
        print(f"scene {scene_name}: {len(scene)} gaussians")
        print(f"  CS image vs exact sort: {report['psnr_cs_db']:.2f} dB "
              f"PSNR ({report['inversions']} residual depth inversions)")
        print(f"  sort comparators: {report['comparators_base']} -> "
              f"{report['comparators_cs']} "
              f"({report['comparators_cs'] / report['comparators_base']:.1%})")
        print(f"  sorter buffer:    {report['buffer_base']} -> "
              f"{report['buffer_cs']} elements")
    print("\npaper shape (Fig. 15): ~0.1 dB quality cost for a bounded, "
          "far cheaper sort")


if __name__ == "__main__":
    main()
