"""Multi-client streaming against one shared shard-fleet.

Spins up a :class:`repro.streaming.StreamService` owning a small
:class:`repro.runtime.fleet.ShardFleet` (shared-memory workers), then
drives three concurrent clients through drifting frame streams from one
asyncio event loop.  Two clients watch the *same* scene, so the second
replays the first's window results from the process-global cache; the
service's admission control sheds a late client (``max_sessions=4``)
and its per-tenant pending cap turns a burst into backpressure instead
of unbounded queueing.

Run:  python examples/multi_client_fleet.py
"""

import asyncio

from repro.datasets import make_drifting_frames
from repro.errors import AdmissionError
from repro.runtime.fleet import FleetConfig
from repro.streaming import StreamService

N_FRAMES = 4
N_POINTS = 800


def _stream(seed):
    frames = make_drifting_frames("two_spheres", N_FRAMES, N_POINTS,
                                  seed=seed, drift=(0.02, 0.01, 0.0))
    return [frame.positions for frame in frames]


async def client(service, session_id, frames):
    """One tenant: submit every frame, frame order preserved."""
    for positions in frames:
        result = await service.submit(session_id, positions,
                                      queries=positions[:64])
        assert result.ok
    return session_id


async def main() -> None:
    fleet_config = FleetConfig(backend="shm", n_workers=2,
                               max_sessions=4, admission="shed")
    async with StreamService(k=8, fleet_config=fleet_config,
                             max_pending=2) as service:
        # Clients "cam-a" and "cam-b" watch the same feed; "lidar"
        # streams its own scene.  All three run concurrently on the
        # one event loop, interleaving on the shared worker set.
        shared = _stream(seed=7)
        await asyncio.gather(
            client(service, "cam-a", shared),
            client(service, "cam-b", shared),
            client(service, "lidar", _stream(seed=42)))

        # A bursty client fires its whole stream at once: frames past
        # the pending cap (max_pending=2) wait for a slot instead of
        # queueing without bound — yet still complete in frame order.
        await asyncio.gather(*[
            service.submit("burst", positions, queries=positions[:64])
            for positions in _stream(seed=99)])

        print(f"{'tenant':8s} {'frames':>6s} {'hits':>5s} {'miss':>5s} "
              f"{'retries':>7s}")
        for sid, stats in sorted(service.tenant_stats().items()):
            print(f"{sid:8s} {stats.frames:6d} {stats.cache_hits:5d} "
                  f"{stats.cache_misses:5d} {stats.retries:7d}")
        waits = service.stats.backpressure_waits
        print(f"\nsubmitted={service.stats.submitted} "
              f"completed={service.stats.completed} "
              f"backpressure_waits={waits}")

        # The fleet is full (max_sessions=4, admission="shed"): a
        # fifth client is refused at admission, not queued.
        try:
            await service.submit("latecomer", shared[0],
                                 queries=shared[0][:8])
        except AdmissionError as exc:
            print(f"latecomer shed: {exc}")

    print("\nservice closed; the two camera clients shared window "
          "results through the process-global cache (whichever ran a "
          "window first served the other — hits above), and the shed "
          "client never touched fleet state")


if __name__ == "__main__":
    asyncio.run(main())
