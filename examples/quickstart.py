"""Quickstart: the StreamGrid flow end to end in ~80 lines.

1. Build a point-cloud pipeline as an abstract dataflow graph (Sec. 6).
2. Apply compulsory splitting + deterministic termination to its
   global-dependent search (Sec. 4).
3. Optimize the line buffers with the ILP (Sec. 5) and verify the
   schedule streams stall-free at cycle granularity.
4. Stream a LiDAR frame sequence through a warm StreamSession — the
   frame-over-frame engine that keeps pools, deadlines, and chunk
   tables alive between frames.
5. Stream a partial-drift scene: only a few chunk cells move per frame,
   so the session repairs just the dirty windows and replays clean
   windows' repeated query blocks from the cross-frame result cache.
6. Run through failures: inject a deterministic in-unit fault and feed
   a corrupt frame — the supervised runtime retries the failed unit and
   the session quarantines the bad frame, both without losing the warm
   stream or changing any result.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    CompulsorySplitter,
    SplittingConfig,
    StreamGridConfig,
    StreamSession,
    TerminationConfig,
    TerminationPolicy,
)
from repro.dataflow import DataflowGraph, global_op, sink, source, stencil
from repro.datasets import (
    make_lidar_cloud,
    make_lidar_stream_frames,
    make_partial_drift_frames,
)
from repro.optimizer import extend_to_chunks, optimize_buffers
from repro.runtime import FaultInjector, FaultSpec
from repro.sim import simulate_streaming


def main() -> None:
    # --- a real point cloud and a real global-dependent operation -----
    cloud = make_lidar_cloud(n_points=1024, seed=0)
    print(f"simulated LiDAR cloud: {len(cloud)} points")

    splitting = SplittingConfig(shape=(3, 3, 1), kernel=(2, 2, 1))
    splitter = CompulsorySplitter(cloud.positions, splitting)
    print(f"compulsory splitting: {splitter.n_chunks} chunks, "
          f"{splitter.n_windows} stencil windows, worst window holds "
          f"{splitter.max_window_points()} of {len(cloud)} points")

    policy = TerminationPolicy(TerminationConfig(deadline_fraction=0.25))
    deadline = policy.calibrate(cloud.positions, k=16)
    print(f"deterministic termination: profiled "
          f"{policy.profile.describe()}; deadline = {deadline} steps")

    result = splitter.knn(cloud.positions[10], k=16, max_steps=deadline)
    print(f"windowed + capped kNN: {len(result.indices)} neighbours in "
          f"{result.steps} steps (terminated={result.terminated})")

    # --- describe the pipeline abstractly (the Fig. 12 example) -------
    graph = DataflowGraph.chain([
        source("reader", o_shape=(1, 3)),
        global_op("knn_search", i_shape=(1, 3), o_shape=(4, 3),
                  i_freq=1, o_freq=8, reuse=(1, 1), stage=8),
        stencil("curvature", i_shape=(1, 3), o_shape=(1, 1), stage=2,
                reuse=(2, 1)),
        sink("drain", i_shape=(1, 1)),
    ])

    # --- optimize line buffers for one chunk window -------------------
    window_points = splitter.max_window_points()
    schedule = optimize_buffers(graph.instantiate(window_points))
    print("\n" + schedule.summary())

    # --- extend over all windows and verify stall-free streaming ------
    multi = extend_to_chunks(schedule, splitter.n_windows)
    report = simulate_streaming(schedule, n_chunks=splitter.n_windows)
    print(f"\nmulti-chunk: {splitter.n_windows} windows, II = "
          f"{multi.initiation_interval:.0f} cycles, makespan = "
          f"{multi.makespan:.0f} cycles")
    print(f"cycle-level replay: stall_free={report.stall_free}, DRAM "
          f"traffic = {report.dram_traffic_bytes / 1024:.1f} KiB "
          "(input + output only — no intermediate off-chip traffic)")

    # --- stream a frame sequence through a warm session ---------------
    frames = make_lidar_stream_frames(n_frames=4, n_points=720,
                                      advance=80, seed=0)
    session_splitting = SplittingConfig(shape=(9, 1, 1), kernel=(2, 1, 1),
                                        mode="serial")
    print(f"\nstreaming session: {len(frames)} sliding frames of "
          f"{len(frames[0])} points (one chunk advance per frame)")
    with StreamSession(StreamGridConfig(splitting=session_splitting),
                       k=8) as session:
        for frame in session.run(frames):
            print(f"  frame {frame.frame_id}: deadline "
                  f"{frame.deadline} steps, recalibrated="
                  f"{frame.recalibrated}, index_reused="
                  f"{frame.index_reused}, drift="
                  f"{'-' if frame.drift is None else f'{frame.drift:.3f}'}")
        stats = session.stats
        print(f"  reuse: {stats.calibrations} calibration(s) over "
              f"{stats.frames} frames, {stats.index_fast_path_frames} "
              f"occupancy fast-path frames, {stats.trees_reused} window "
              "kd-trees carried over")

    # --- partial drift: dirty-window repair + result caching ----------
    # executor="shm" runs the windows on the zero-copy shared-memory
    # pool: workers attach to per-window segments instead of re-forking,
    # and a warm frame re-exports only the windows that actually moved
    # (the session's state_bytes_shipped / forks_avoided counters make
    # that auditable).  Falls back down the process→thread→serial
    # ladder with identical results wherever fork is unavailable.
    partial = make_partial_drift_frames("two_spheres", 4, 640,
                                        shape=(4, 4, 1), fraction=0.125,
                                        seed=0)
    query_rows = np.arange(0, 640, 7)
    print(f"\npartial-drift session: {len(partial)} frames of "
          f"{len(partial[0])} points, 2 of 16 chunk cells move per frame")
    with StreamSession(StreamGridConfig(
            splitting=SplittingConfig(shape=(4, 4, 1), kernel=(2, 2, 1)),
            executor="shm", executor_workers=2),
            k=8) as session:
        for cloud in partial:
            frame = session.process(cloud.positions,
                                    cloud.positions[query_rows])
            print(f"  frame {frame.frame_id}: {frame.clean_windows} of "
                  f"{frame.n_windows} windows clean, "
                  f"{frame.rebuilt_windows} rebuilt, "
                  f"{frame.runtime.get('state_bytes_shipped', 0)}B "
                  "staged")
        stats = session.stats
        print(f"  result cache: {stats.cache_hits} unit replays, "
              f"{stats.cache_misses} executed "
              f"({stats.windows_clean} window-frames never rebuilt)")
        print(f"  zero-copy: {stats.state_bytes_shipped}B staged into "
              f"{stats.segments_live} shared segments, "
              f"{stats.forks_avoided} worker re-forks avoided "
              f"(effective backend: {session.effective_executor})")

    # --- running through failures: retries + frame quarantine ---------
    # A deterministic injector makes the 2nd work unit of window 1
    # raise once; supervision retries it on the spot.  Frame 2 arrives
    # corrupt (NaN positions); with on_error="skip" the session rejects
    # it *before* touching warm state and keeps streaming.
    injector = FaultInjector([FaultSpec(kind="raise", window=1, nth=2)])
    faulty_frames = [f.positions.copy() for f in
                     make_lidar_stream_frames(n_frames=4, n_points=720,
                                              advance=80, seed=0)]
    faulty_frames[2] = faulty_frames[2].copy()
    faulty_frames[2][5] = np.nan
    print(f"\nfault-tolerant session: {len(faulty_frames)} frames, one "
          "injected unit fault + one corrupt frame")
    with StreamSession(StreamGridConfig(splitting=session_splitting,
                                        executor=injector.executor(
                                            "serial")),
                       k=8) as session:
        for frame in session.run(faulty_frames, on_error="skip"):
            status = ("ok" if frame.ok else
                      f"quarantined ({frame.error['type']})")
            print(f"  frame {frame.frame_id}: {status}, "
                  f"retries={frame.retries}")
        stats = session.stats
        print(f"  recovered: {stats.retries} unit retr(ies), "
              f"{stats.frames_quarantined} frame(s) quarantined, "
              f"{stats.validation_failures} validation failure(s); "
              f"{stats.frames - stats.frames_quarantined} good frames "
              "completed on the warm fast path")


if __name__ == "__main__":
    np.set_printoptions(precision=3, suppress=True)
    main()
