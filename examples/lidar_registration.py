"""LiDAR odometry (A-LOAM-style) under Base / CS / CS+DT.

Simulates a short drive through a synthetic urban canyon, runs
scan-to-scan odometry with each variant's correspondence search, and
reports the Fig. 14 error metrics.  Then drives the same sequence
through the *session-backed* streaming estimator — two persistent
feature-cloud StreamSessions warm across the drive, one FramePlan
dispatch per Gauss-Newton iteration — and shows it chains the exact
same poses as the one-shot rebuild-per-pair path at a pinned deadline.

Run:  python examples/lidar_registration.py
"""

import numpy as np

from repro.core.config import (
    SplittingConfig,
    StreamGridConfig,
    TerminationConfig,
)
from repro.datasets import ScannerConfig, make_kitti_sequence
from repro.registration import (
    OdometrySession,
    compare_registration_variants,
    feature_clouds_summary,
    run_odometry,
)
from repro.registration.features import FeatureConfig


def main() -> None:
    sequence = make_kitti_sequence(
        n_scans=5, seed=0, step=0.3,
        config=ScannerConfig(n_azimuth=240, n_beams=8))
    summary = feature_clouds_summary(sequence.scans[0])
    print(f"sequence: {len(sequence)} scans, first scan "
          f"{summary['n_points']} points -> {summary['n_edges']} edge + "
          f"{summary['n_planes']} planar features")

    feature_config = FeatureConfig(half_window=4, n_edge_per_ring=10,
                                   n_planar_per_ring=24)
    results = compare_registration_variants(
        sequence, n_chunks=4, deadline_fraction=0.25,
        feature_config=feature_config)

    print(f"\n{'variant':8s} {'trans err [m]':>14s} {'rot err [rad]':>14s}"
          f" {'rel drift':>10s}")
    for name in ("Base", "CS", "CS+DT"):
        errs = results[name]
        print(f"{name:8s} {errs['mean_translation_error']:>14.4f} "
              f"{errs['mean_rotation_error']:>14.5f} "
              f"{errs['relative_drift']:>10.4f}")
    extra = (results["CS+DT"]["mean_translation_error"]
             - results["Base"]["mean_translation_error"])
    print(f"\nCS+DT adds {extra:+.4f} m translational error over Base "
          "(paper: ~0.01% extra, no rotational loss)")

    # --- session-backed odometry: registration as a streaming operator
    config = StreamGridConfig(
        splitting=SplittingConfig(shape=(4, 1, 1), kernel=(2, 1, 1),
                                  mode="serial"),
        termination=TerminationConfig(deadline_steps=25),
        use_splitting=True, use_termination=True)
    print("\nsession-backed odometry (CS+DT, pinned 25-step deadline):")
    with OdometrySession(config, feature_config=feature_config,
                         start_pose=sequence.poses[0]) as estimator:
        for scan in sequence.scans:
            frame = estimator.process_scan(scan)
            pose = frame.payload["pose"]
            align = frame.payload["alignment"]
            iters = "-" if align is None else align.iterations
            print(f"  scan {frame.frame_id}: pos "
                  f"({pose[0, 3]:6.2f}, {pose[1, 3]:6.2f}), "
                  f"{frame.payload['n_edges']:3d}E/"
                  f"{frame.payload['n_planes']:3d}P features, "
                  f"GN iterations {iters}, index_reused="
                  f"{frame.index_reused}")
        warm = estimator.result()
        stats = estimator.stats["edges"]
        print(f"  edge session: {stats.calibrations} calibration(s), "
              f"{stats.cache_hits} cached unit replays over "
              f"{stats.frames} frames")
    oneshot = run_odometry(sequence, config,
                           feature_config=feature_config, warm=False)
    identical = all(np.array_equal(a, b)
                    for a, b in zip(warm.poses, oneshot.poses))
    print(f"  poses bit-equal to the one-shot rebuild-per-pair path: "
          f"{identical}")


if __name__ == "__main__":
    main()
