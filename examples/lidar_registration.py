"""LiDAR odometry (A-LOAM-style) under Base / CS / CS+DT.

Simulates a short drive through a synthetic urban canyon, runs
scan-to-scan odometry with each variant's correspondence search, and
reports the Fig. 14 error metrics.

Run:  python examples/lidar_registration.py
"""

from repro.datasets import ScannerConfig, make_kitti_sequence
from repro.registration import (
    compare_registration_variants,
    feature_clouds_summary,
)
from repro.registration.features import FeatureConfig


def main() -> None:
    sequence = make_kitti_sequence(
        n_scans=5, seed=0, step=0.3,
        config=ScannerConfig(n_azimuth=240, n_beams=8))
    summary = feature_clouds_summary(sequence.scans[0])
    print(f"sequence: {len(sequence)} scans, first scan "
          f"{summary['n_points']} points -> {summary['n_edges']} edge + "
          f"{summary['n_planes']} planar features")

    results = compare_registration_variants(
        sequence, n_chunks=4, deadline_fraction=0.25,
        feature_config=FeatureConfig(half_window=4, n_edge_per_ring=10,
                                     n_planar_per_ring=24))

    print(f"\n{'variant':8s} {'trans err [m]':>14s} {'rot err [rad]':>14s}"
          f" {'rel drift':>10s}")
    for name in ("Base", "CS", "CS+DT"):
        errs = results[name]
        print(f"{name:8s} {errs['mean_translation_error']:>14.4f} "
              f"{errs['mean_rotation_error']:>14.5f} "
              f"{errs['relative_drift']:>10.4f}")
    extra = (results["CS+DT"]["mean_translation_error"]
             - results["Base"]["mean_translation_error"])
    print(f"\nCS+DT adds {extra:+.4f} m translational error over Base "
          "(paper: ~0.01% extra, no rotational loss)")


if __name__ == "__main__":
    main()
