"""Line-buffer optimization across all four application pipelines.

Builds each Tbl. 2 pipeline, runs the ILP on the unsplit and windowed
instantiations, and prints the Fig. 17-style buffer comparison plus the
constraint-pruning statistics.

Run:  python examples/buffer_optimization.py
"""

from repro.optimizer import (
    build_problem,
    count_dense_constraints,
    count_pruned_constraints,
)
from repro.pipelines import build_pipeline
from repro.sim.variants import pipeline_buffer_bytes

PIPELINES = (
    ("classification", {"n_points": 1024}),
    ("segmentation", {"n_points": 1024}),
    ("registration", {"n_scan_points": 2048}),
    ("rendering", {"n_gaussians": 8192}),
)


def main() -> None:
    print(f"{'pipeline':14s} {'Base[KiB]':>10s} {'CS[KiB]':>9s} "
          f"{'CS+DT[KiB]':>11s} {'reduction':>9s} {'dense':>7s} "
          f"{'pruned':>6s}")
    for name, kwargs in PIPELINES:
        spec = build_pipeline(name, **kwargs)
        base = pipeline_buffer_bytes(spec.graph, spec.workload,
                                     False, False)
        cs = pipeline_buffer_bytes(spec.graph, spec.workload, True, False)
        csdt = pipeline_buffer_bytes(spec.graph, spec.workload,
                                     True, True)
        inst = spec.graph.instantiate(spec.workload.window_points)
        dense = count_dense_constraints(inst)
        pruned = count_pruned_constraints(build_problem(inst))
        print(f"{name:14s} {base / 1024:>10.1f} {cs / 1024:>9.1f} "
              f"{csdt / 1024:>11.1f} {1 - csdt / base:>9.1%} "
              f"{dense:>7d} {pruned:>6d}")
    print("\npaper shape (Fig. 17a): ~72% mean buffer reduction; "
          "constraint pruning shrinks >100K constraints to a handful "
          "per edge (Sec. 5.2)")


if __name__ == "__main__":
    main()
