"""Co-training PointNet++ with StreamGrid behaviours (Sec. 4.3, Fig. 16).

Trains the from-scratch PointNet++ classifier twice — once with canonical
search (no co-training) and once with windowed, step-capped search in the
forward pass (co-training) — then evaluates both under an aggressive
deployment split to show co-training rescuing accuracy.

Run:  python examples/classification_cotraining.py
"""

import numpy as np

from repro.core import StreamGridConfig, TerminationConfig
from repro.core.cotraining import baseline_config
from repro.core.splitting import splitting_for_chunks
from repro.datasets import make_modelnet
from repro.nn import (
    ClassifierSpec,
    SALevelSpec,
    evaluate_classifier,
    train_classifier,
)


def main() -> None:
    classes = ("sphere", "box", "plane", "cross")
    dataset = make_modelnet(8, n_points=96, class_names=classes, seed=0)
    train, test = dataset.split(0.6, np.random.default_rng(1))
    print(f"dataset: {len(train)} train / {len(test)} test clouds, "
          f"{len(classes)} classes")

    spec = ClassifierSpec(sa1=SALevelSpec(24, 0.45, 12),
                          sa2=SALevelSpec(8, 0.9, 6))
    deploy = StreamGridConfig(
        splitting=splitting_for_chunks(16, kernel_width=1),
        termination=TerminationConfig(profile_queries=8),
        use_splitting=True, use_termination=True)
    print(f"deployment config: {deploy.splitting.n_windows} independent "
          "chunk windows + profiled deadline (aggressive)")

    print("\ntraining WITHOUT co-training (canonical search)...")
    plain = train_classifier(train, baseline_config(), epochs=15,
                             lr=0.003, seed=0, spec=spec)
    print("training WITH co-training (deployment search in the loop)...")
    cotrained = train_classifier(train, deploy, epochs=15, lr=0.003,
                                 seed=0, spec=spec)

    rows = [
        ("plain model, exact search", evaluate_classifier(plain, test)),
        ("plain model, deployed CS+DT",
         evaluate_classifier(plain, test, deploy)),
        ("co-trained model, deployed CS+DT",
         evaluate_classifier(cotrained, test, deploy)),
    ]
    print(f"\n{'setting':36s} accuracy")
    for name, acc in rows:
        print(f"{name:36s} {acc:.3f}")
    print("\npaper shape (Fig. 16): deployment without co-training drops "
          "accuracy; co-training restores it")


if __name__ == "__main__":
    main()
